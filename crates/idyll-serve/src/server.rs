//! The daemon: accept loop, bounded job queue, worker pool, result cache.
//!
//! ## Life of a job
//!
//! 1. A connection thread decodes a `submit` batch, canonically decodes
//!    each job's config/spec and computes its content address.
//! 2. Jobs whose address is already cached complete immediately: the
//!    stored canonical report is served verbatim, byte-identical to
//!    re-running the cell, because the simulator is deterministic and
//!    every report field is derived from `(config, spec, seed)`.
//! 3. The rest enter the bounded queue — atomically per batch: if the
//!    batch does not fit, nothing is enqueued and the client gets
//!    `busy` with a `retry_after_ms` hint (backpressure, not failure).
//! 4. Workers pop jobs, regenerate the workload from the spec and run the
//!    simulation through `mgpu_system::runner::run_jobs_timed`. Fresh
//!    results are cached, then published to result waiters.
//!
//! ## Timeouts
//!
//! A running simulation cannot be preempted, so the per-job timeout is a
//! *deadline mark*: the worker checks the deadline when the run finishes;
//! late results are discarded (reported as failed, never cached). The
//! timeout therefore bounds result credibility, not worker occupancy.
//!
//! ## Shutdown
//!
//! `shutdown` flips the drain flag: the accept loop stops taking new
//! connections, workers finish every queued job, then the server joins
//! them and exits. With zero workers (a configuration used by
//! backpressure tests), queued jobs are discarded as failed instead, since
//! nobody will ever run them.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mgpu_system::canon;
use mgpu_system::config::SystemConfig;
use mgpu_system::runner::{run_jobs_timed_observed, Job, RunObserver};
use sim_engine::metrics::MetricsRegistry;
use sim_engine::stats::{hit_rate, Accumulator, Histogram};
use workloads::WorkloadSpec;

use crate::cache::ResultCache;
use crate::proto::{JobSpec, JobState, Request, Response, WatchEvent};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads. Zero is allowed (jobs queue but never run) and is
    /// used to test backpressure deterministically.
    pub workers: usize,
    /// Bounded queue capacity; submit batches that do not fit are rejected
    /// with a retry hint.
    pub queue_capacity: usize,
    /// Per-job deadline in seconds; results arriving later are discarded.
    pub job_timeout_secs: Option<f64>,
    /// Result-cache directory; `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Simulation-event cadence for `watch` progress updates: a running
    /// job publishes `(events_processed, sim_cycle)` every this many
    /// events. Zero disables progress publication (watchers still see
    /// state transitions). The callback only touches host-side job
    /// records, so cadence never affects simulation results.
    pub progress_every_events: u64,
    /// Worker threads driving each simulation's event lanes (0 or 1 =
    /// serial). Results are byte-identical for any value — the cache key
    /// deliberately excludes it — so this only trades per-job latency
    /// against cross-job throughput.
    pub sim_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 256,
            job_timeout_secs: None,
            cache_dir: None,
            progress_every_events: 100_000,
            sim_threads: 1,
        }
    }
}

/// A fully decoded job waiting for a worker.
#[derive(Debug, Clone)]
struct Work {
    scheme: String,
    config: SystemConfig,
    spec: WorkloadSpec,
    seed: u64,
    key: String,
    /// When the job entered the queue; feeds the `queue_wait_us`
    /// histogram when a worker finally picks it up.
    enqueued_at: std::time::Instant,
}

/// A finished job's published answer.
#[derive(Debug, Clone)]
struct Outcome {
    report: String,
    wall_secs: f64,
    cached: bool,
}

#[derive(Debug)]
struct JobRecord {
    state: JobState,
    outcome: Option<Outcome>,
    error: Option<String>,
    /// Latest `(events_processed, sim_cycle)` heartbeat from the runner's
    /// progress callback; `None` until the first heartbeat arrives.
    progress: Option<(u64, u64)>,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    cache_hits: u64,
    cache_misses: u64,
    batches_rejected: u64,
    sim_events: u64,
    live_wall: Accumulator,
    /// Microseconds each job spent queued before a worker picked it up.
    queue_wait_us: Histogram,
    /// Microseconds of host wall-clock per fresh (non-cached) run.
    run_wall_us: Histogram,
}

#[derive(Debug)]
struct State {
    queue: VecDeque<(u64, Work)>,
    jobs: BTreeMap<u64, JobRecord>,
    next_id: u64,
    running: u64,
    draining: bool,
    counters: Counters,
}

/// Shared server internals: one mutex-guarded state plus two condition
/// variables (workers park on `queue_cv`; result waiters on `done_cv`).
struct Shared {
    state: Mutex<State>,
    queue_cv: Condvar,
    done_cv: Condvar,
    cache: ResultCache,
    config: ServerConfig,
}

impl Shared {
    fn new(config: ServerConfig, cache: ResultCache) -> Self {
        Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: BTreeMap::new(),
                next_id: 1,
                running: 0,
                draining: false,
                counters: Counters::default(),
            }),
            queue_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cache,
            config,
        }
    }

    fn handle_submit(&self, jobs: Vec<JobSpec>) -> Response {
        // Queue-wait measurement starts at batch arrival; host-side
        // bookkeeping only, never simulation state.
        // simlint: allow(wall-clock) — queue-wait clock at the service edge
        let arrived = std::time::Instant::now();
        // Decode everything before touching the queue so a malformed batch
        // rejects atomically.
        let mut decoded = Vec::with_capacity(jobs.len());
        for (i, j) in jobs.iter().enumerate() {
            let config = match canon::decode_config(&j.config) {
                Ok(c) => c,
                Err(e) => {
                    return Response::Error {
                        message: format!("job {i}: bad config: {e}"),
                    }
                }
            };
            let spec = match canon::decode_spec(&j.spec) {
                Ok(s) => s,
                Err(e) => {
                    return Response::Error {
                        message: format!("job {i}: bad spec: {e}"),
                    }
                }
            };
            let key = canon::job_key(&config, &spec, j.seed);
            decoded.push(Work {
                scheme: j.scheme.clone(),
                config,
                spec,
                seed: j.seed,
                key,
                enqueued_at: arrived,
            });
        }

        let mut state = self.state.lock().expect("state lock");
        if state.draining {
            return Response::Error {
                message: "server is draining".to_string(),
            };
        }
        // Atomic batch admission: either every non-cached job fits in the
        // queue or the whole batch is pushed back on the client.
        let misses = decoded
            .iter()
            .filter(|w| self.cache.get(&w.key).is_none())
            .count();
        if state.queue.len() + misses > self.config.queue_capacity {
            state.counters.batches_rejected += 1;
            // Heuristic: ~100ms of drain per queued job, clamped. The hint
            // is advisory pacing, not a promise of capacity.
            let retry_after_ms = (100 * (state.queue.len() as u64 + 1)).clamp(100, 5_000);
            return Response::Busy { retry_after_ms };
        }

        let mut ids = Vec::with_capacity(decoded.len());
        let mut cached_flags = Vec::with_capacity(decoded.len());
        for work in decoded {
            let id = state.next_id;
            state.next_id += 1;
            state.counters.submitted += 1;
            match self.cache.get(&work.key) {
                // The canonical report is fully determined by
                // `(config, spec, seed)` — the submit label only exists on
                // the client's `TimedRun` — so a hit serves the stored
                // bytes verbatim, trivially byte-identical to a re-run.
                Some(report) => {
                    state.counters.cache_hits += 1;
                    state.counters.completed += 1;
                    state.jobs.insert(
                        id,
                        JobRecord {
                            state: JobState::Done,
                            outcome: Some(Outcome {
                                report,
                                wall_secs: 0.0,
                                cached: true,
                            }),
                            error: None,
                            progress: None,
                        },
                    );
                    cached_flags.push(true);
                }
                None => {
                    state.counters.cache_misses += 1;
                    state.jobs.insert(
                        id,
                        JobRecord {
                            state: JobState::Queued,
                            outcome: None,
                            error: None,
                            progress: None,
                        },
                    );
                    state.queue.push_back((id, work));
                    cached_flags.push(false);
                }
            }
            ids.push(id);
        }
        self.queue_cv.notify_all();
        self.done_cv.notify_all();
        Response::Submitted {
            ids,
            cached: cached_flags,
        }
    }

    fn handle_status(&self, id: Option<u64>) -> Response {
        let state = self.state.lock().expect("state lock");
        match id {
            None => Response::Status {
                queue_depth: state.queue.len() as u64,
                running: state.running,
                completed: state.counters.completed + state.counters.failed,
                workers: self.config.workers as u64,
                draining: state.draining,
            },
            Some(id) => match state.jobs.get(&id) {
                Some(rec) => Response::JobStatus {
                    id,
                    state: rec.state.clone(),
                },
                None => Response::Error {
                    message: format!("unknown job id {id}"),
                },
            },
        }
    }

    fn handle_result(&self, id: u64, wait: bool) -> Response {
        let mut state = self.state.lock().expect("state lock");
        loop {
            let answer = match state.jobs.get(&id) {
                None => Some(Response::Error {
                    message: format!("unknown job id {id}"),
                }),
                Some(rec) => match (&rec.state, &rec.outcome) {
                    (JobState::Done, Some(outcome)) => Some(Response::JobResult {
                        id,
                        report: outcome.report.clone(),
                        wall_secs: outcome.wall_secs,
                        cached: outcome.cached,
                    }),
                    (JobState::Failed, _) => Some(Response::Error {
                        message: rec
                            .error
                            .clone()
                            .unwrap_or_else(|| "job failed".to_string()),
                    }),
                    (state_now, _) if !wait => Some(Response::JobStatus {
                        id,
                        state: state_now.clone(),
                    }),
                    _ => None,
                },
            };
            if let Some(response) = answer {
                return response;
            }
            // Re-check periodically so a waiter also notices drain.
            let (guard, _) = self
                .done_cv
                .wait_timeout(state, Duration::from_millis(200))
                .expect("state lock");
            state = guard;
        }
    }

    fn handle_metrics(&self) -> Response {
        let state = self.state.lock().expect("state lock");
        let mut reg = MetricsRegistry::new();
        let mut scope = reg.scope("serve");
        scope.count("jobs_submitted", state.counters.submitted);
        scope.count("jobs_completed", state.counters.completed);
        scope.count("jobs_failed", state.counters.failed);
        scope.count("cache_hits", state.counters.cache_hits);
        scope.count("cache_misses", state.counters.cache_misses);
        scope.count("batches_rejected", state.counters.batches_rejected);
        scope.count("sim_events_total", state.counters.sim_events);
        scope.count("queue_depth", state.queue.len() as u64);
        scope.count("jobs_running", state.running);
        scope.count("workers", self.config.workers as u64);
        scope.count("queue_capacity", self.config.queue_capacity as u64);
        scope.count("cache_entries", self.cache.len() as u64);
        scope.gauge(
            "cache_hit_rate",
            hit_rate(state.counters.cache_hits, state.counters.cache_misses),
        );
        scope.accumulator("job_wall_secs", &state.counters.live_wall);
        scope.histogram("queue_wait_us", &state.counters.queue_wait_us);
        scope.histogram("run_wall_us", &state.counters.run_wall_us);
        Response::Metrics {
            json: reg.to_json(),
        }
    }

    /// Streams `watch_event` lines for one job until it reaches a terminal
    /// state: the current state immediately, then one line per observed
    /// state/progress change, closing with a `final: true` line on
    /// `Done`/`Failed`. An unknown id gets a single `error` line and the
    /// connection returns to the normal request/response alternation.
    ///
    /// The state lock is only held to snapshot; every TCP write happens
    /// after release, so a slow watcher can never stall workers.
    fn stream_watch(&self, id: u64, writer: &mut TcpStream) -> std::io::Result<()> {
        let mut last_sent: Option<(JobState, Option<(u64, u64)>)> = None;
        loop {
            let snapshot = {
                let state = self.state.lock().expect("state lock");
                state
                    .jobs
                    .get(&id)
                    .map(|rec| (rec.state.clone(), rec.progress))
            };
            let Some((job_state, progress)) = snapshot else {
                let resp = Response::Error {
                    message: format!("unknown job id {id}"),
                };
                writer.write_all(resp.encode().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                return Ok(());
            };
            let terminal = matches!(job_state, JobState::Done | JobState::Failed);
            let current = (job_state.clone(), progress);
            if terminal || last_sent.as_ref() != Some(&current) {
                let event = WatchEvent {
                    id,
                    state: job_state,
                    events: progress.map(|(events, _)| events),
                    cycle: progress.map(|(_, cycle)| cycle),
                    last: terminal,
                };
                writer.write_all(Response::Watch(event).encode().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                if terminal {
                    return Ok(());
                }
                last_sent = Some(current);
            } else {
                // Nothing new; park until workers publish or the
                // periodic re-check fires (same pattern as result waiters).
                let state = self.state.lock().expect("state lock");
                let _ = self
                    .done_cv
                    .wait_timeout(state, Duration::from_millis(200))
                    .expect("state lock");
            }
        }
    }

    /// Initiates drain. Returns only once the flag is set; the caller wakes
    /// the accept loop separately.
    fn begin_shutdown(&self) {
        let mut state = self.state.lock().expect("state lock");
        state.draining = true;
        if self.config.workers == 0 {
            // Nobody will ever run these; fail them instead of hanging the
            // drain forever.
            while let Some((id, _)) = state.queue.pop_front() {
                if let Some(rec) = state.jobs.get_mut(&id) {
                    rec.state = JobState::Failed;
                    rec.error = Some("discarded at shutdown (no workers)".to_string());
                }
                state.counters.failed += 1;
            }
        }
        self.queue_cv.notify_all();
        self.done_cv.notify_all();
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let (id, work) = {
                let mut state = self.state.lock().expect("state lock");
                loop {
                    if let Some(item) = state.queue.pop_front() {
                        break item;
                    }
                    if state.draining {
                        return;
                    }
                    state = self.queue_cv.wait(state).expect("state lock");
                }
            };
            {
                let mut state = self.state.lock().expect("state lock");
                state.running += 1;
                if let Some(rec) = state.jobs.get_mut(&id) {
                    rec.state = JobState::Running;
                }
                let waited_us = work.enqueued_at.elapsed().as_micros();
                state
                    .counters
                    .queue_wait_us
                    .record(u64::try_from(waited_us).unwrap_or(u64::MAX));
            }
            self.done_cv.notify_all();
            // The deadline clock measures host wall time around an
            // unpreemptible simulation; it never feeds simulation state.
            // simlint: allow(wall-clock) — per-job deadline at the service edge
            let started = std::time::Instant::now();
            let workload = workloads::generate(&work.spec, work.config.n_gpus, work.seed);
            // Progress heartbeats publish into the job record so `watch`
            // subscribers see them; the callback never touches the
            // simulation, so cadence cannot perturb results.
            let observer = RunObserver {
                progress_every: self.config.progress_every_events,
                on_progress: if self.config.progress_every_events > 0 {
                    let shared = Arc::clone(&self);
                    Some(Arc::new(move |_, p| {
                        let mut state = shared.state.lock().expect("state lock");
                        if let Some(rec) = state.jobs.get_mut(&id) {
                            rec.progress = Some((p.events_processed, p.sim_cycle));
                        }
                        drop(state);
                        shared.done_cv.notify_all();
                    }))
                } else {
                    None
                },
                profile: false,
                sim_threads: self.config.sim_threads,
            };
            let result = run_jobs_timed_observed(
                vec![Job {
                    scheme: work.scheme.clone(),
                    config: work.config.clone(),
                    workload,
                }],
                1,
                &observer,
            );
            let elapsed = started.elapsed().as_secs_f64();
            let timed_out = self
                .config
                .job_timeout_secs
                .is_some_and(|limit| elapsed > limit);

            let mut state = self.state.lock().expect("state lock");
            state.running -= 1;
            let rec = state.jobs.get_mut(&id).expect("job record exists");
            match result {
                Ok(mut runs) if !timed_out => {
                    let run = runs.pop().expect("one job, one result");
                    let report = canon::encode_report(&run.report);
                    rec.state = JobState::Done;
                    // Final progress reflects the completed run so the
                    // terminal watch line carries the true event total.
                    rec.progress = Some((run.report.events_processed, run.report.exec_cycles));
                    rec.outcome = Some(Outcome {
                        report: report.clone(),
                        wall_secs: run.wall_secs,
                        cached: false,
                    });
                    state.counters.completed += 1;
                    state.counters.sim_events += run.report.events_processed;
                    state.counters.live_wall.record(run.wall_secs);
                    state
                        .counters
                        .run_wall_us
                        .record((run.wall_secs.max(0.0) * 1e6) as u64);
                    // Cache failures degrade to a warning: the result is
                    // still correct and already published in memory.
                    if let Err(e) = self.cache.put(&work.key, &report) {
                        eprintln!("idyll-serve: cache write failed for {}: {e}", work.key);
                    }
                }
                Ok(_) => {
                    // A late result is discarded, not cached: the deadline
                    // is the credibility bound the operator asked for.
                    rec.state = JobState::Failed;
                    rec.error = Some(format!(
                        "job exceeded deadline ({elapsed:.1}s > {:.1}s); result discarded",
                        self.config.job_timeout_secs.unwrap_or(0.0)
                    ));
                    state.counters.failed += 1;
                }
                Err(e) => {
                    rec.state = JobState::Failed;
                    rec.error = Some(format!("simulation error: {e}"));
                    state.counters.failed += 1;
                }
            }
            self.done_cv.notify_all();
        }
    }
}

/// A running daemon handle (in-process servers: tests, the `smoke`
/// subcommand).
pub struct ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// Waits for the daemon to drain and exit.
    ///
    /// # Errors
    /// Propagates the accept loop's I/O error, if any.
    ///
    /// # Panics
    /// If the server thread panicked.
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().expect("server thread panicked")
    }
}

fn open_cache(config: &ServerConfig) -> std::io::Result<ResultCache> {
    match &config.cache_dir {
        Some(dir) => ResultCache::open(dir),
        None => Ok(ResultCache::in_memory()),
    }
}

/// Binds and serves until a client sends `shutdown`. Blocks the calling
/// thread for the daemon's whole life.
///
/// # Errors
/// Propagates bind/accept failures and cache-directory errors.
pub fn serve(config: ServerConfig) -> std::io::Result<()> {
    let listener = TcpListener::bind(&config.addr)?;
    let cache = open_cache(&config)?;
    let shared = Arc::new(Shared::new(config, cache));
    run(listener, shared)
}

/// Binds, then serves on a background thread; returns once the listener is
/// accepting. The handle reports the bound address (useful with port 0).
///
/// # Errors
/// Propagates bind and cache-directory failures.
pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache = open_cache(&config)?;
    let shared = Arc::new(Shared::new(config, cache));
    let thread = std::thread::spawn(move || run(listener, shared));
    Ok(ServerHandle { addr, thread })
}

fn run(listener: TcpListener, shared: Arc<Shared>) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    let mut workers = Vec::new();
    for _ in 0..shared.config.workers {
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || shared.worker_loop()));
    }

    let active_connections = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if shared.state.lock().expect("state lock").draining {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        let active = Arc::clone(&active_connections);
        active.fetch_add(1, Ordering::SeqCst);
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &shared, addr);
            active.fetch_sub(1, Ordering::SeqCst);
        });
    }

    for worker in workers {
        let _ = worker.join();
    }
    // Grace period for in-flight connections to flush their last response
    // (result waiters racing the drain). Purely an edge-of-process
    // courtesy; simulation artifacts never depend on it.
    for _ in 0..100 {
        if active_connections.load(Ordering::SeqCst) == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Ok(())
}

fn handle_connection(
    stream: TcpStream,
    shared: &Shared,
    server_addr: SocketAddr,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let request = Request::decode(line.trim_end());
        let (response, is_shutdown) = match request {
            Ok(Request::Submit(jobs)) => (shared.handle_submit(jobs), false),
            Ok(Request::Status(id)) => (shared.handle_status(id), false),
            // `watch` streams many lines itself, outside the one-response
            // contract below; afterwards the connection resumes the
            // normal request/response alternation.
            Ok(Request::Watch { id }) => {
                shared.stream_watch(id, &mut writer)?;
                continue;
            }
            Ok(Request::Result { id, wait }) => (shared.handle_result(id, wait), false),
            Ok(Request::Metrics) => (shared.handle_metrics(), false),
            Ok(Request::Ping) => (Response::Pong, false),
            Ok(Request::Shutdown) => (Response::ShuttingDown, true),
            Err(e) => (
                Response::Error {
                    message: format!("bad request: {e}"),
                },
                false,
            ),
        };
        writer.write_all(response.encode().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if is_shutdown {
            shared.begin_shutdown();
            // The accept loop is parked in `accept`; poke it so it
            // re-checks the drain flag and exits.
            let _ = TcpStream::connect(server_addr);
            return Ok(());
        }
    }
}
