//! Size-capped garbage collection for the result cache.
//!
//! The durable job log is what makes GC safe: it records which keys
//! belong to *pending* jobs (submitted but not yet terminal), and those
//! are never evicted — a restarted daemon replays the log and expects to
//! find or regenerate exactly those entries. Everything else is fair
//! game, because evicting a finished job's report only costs a
//! deterministic, byte-identical rerun if anyone asks again.
//!
//! Eviction order is oldest-first by log order: entries never mentioned
//! in the log (pre-log legacy files) go first, in lexicographic key
//! order, then finished keys by the position of their first `finish`
//! record. Eviction stops as soon as the cache fits under the cap.

use std::fs;
use std::path::Path;

use sim_engine::collections::{DetHashMap, DetHashSet};

use crate::jobgraph::{parse_log, LogPayload, LogRecord};

/// What one GC pass did (or, under `dry_run`, would do).
#[derive(Debug)]
pub struct GcReport {
    /// Cache bytes before the pass.
    pub bytes_before: u64,
    /// Cache bytes after the pass (equal to `bytes_before` on dry runs).
    pub bytes_after: u64,
    /// `(key, bytes)` evicted, in eviction order.
    pub evicted: Vec<(String, u64)>,
    /// Entries kept because a pending job references them.
    pub pinned: usize,
    /// Entries remaining after the pass.
    pub kept: usize,
    /// Whether this was a dry run (nothing deleted).
    pub dry_run: bool,
}

/// Runs one GC pass over `cache_dir`, evicting until total size fits
/// under `max_bytes`. `log_path` (when present on disk) supplies pin and
/// ordering information; without a log every entry is unpinned legacy.
/// Under `dry_run`, reports what would be evicted without deleting.
///
/// # Errors
/// I/O failures reading the cache directory or deleting entries, and
/// `InvalidData` when the log fails its strict decoder.
pub fn run_gc(
    cache_dir: &Path,
    log_path: &Path,
    max_bytes: u64,
    dry_run: bool,
) -> std::io::Result<GcReport> {
    // Key → first-finish log position, and the pin set (keys of sims that
    // were submitted but never reached a terminal record).
    let mut finish_order: DetHashMap<String, usize> = DetHashMap::default();
    let mut key_of: DetHashMap<u64, String> = DetHashMap::default();
    let mut pending: DetHashMap<u64, String> = DetHashMap::default();
    match fs::read_to_string(log_path) {
        Ok(text) => {
            let records = parse_log(&text)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            for (pos, record) in records.iter().enumerate() {
                match record {
                    LogRecord::Submit {
                        id,
                        payload: LogPayload::Sim { key, .. },
                        ..
                    } => {
                        key_of.insert(*id, key.clone());
                        pending.insert(*id, key.clone());
                    }
                    LogRecord::Submit { .. } | LogRecord::Start { .. } => {}
                    LogRecord::Finish { id, .. } => {
                        pending.remove(id);
                        if let Some(key) = key_of.get(id) {
                            finish_order.entry(key.clone()).or_insert(pos);
                        }
                    }
                    LogRecord::Fail { id, .. } | LogRecord::Cancel { id } => {
                        pending.remove(id);
                    }
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let pinned_keys: DetHashSet<&String> = pending.values().collect();

    // Inventory the cache directory (same 32-hex filter as the cache).
    let mut entries: Vec<(String, u64)> = Vec::new();
    for entry in fs::read_dir(cache_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(key) = name.to_str() else { continue };
        if key.len() == 32 && key.bytes().all(|b| b.is_ascii_hexdigit()) {
            entries.push((key.to_string(), entry.metadata()?.len()));
        }
    }
    let bytes_before: u64 = entries.iter().map(|(_, size)| size).sum();
    let pinned = entries
        .iter()
        .filter(|(key, _)| pinned_keys.contains(key))
        .count();

    // Eviction order: unlogged legacy entries first (lexicographic), then
    // logged entries oldest-first by first-finish position.
    entries.sort_by(|(a, _), (b, _)| {
        let rank = |key: &String| {
            finish_order
                .get(key)
                .map_or((0usize, key.clone()), |pos| (1, format!("{pos:020}")))
        };
        rank(a).cmp(&rank(b))
    });

    let mut bytes_after = bytes_before;
    let mut evicted = Vec::new();
    for (key, size) in &entries {
        if bytes_after <= max_bytes {
            break;
        }
        if pinned_keys.contains(key) {
            continue;
        }
        if !dry_run {
            fs::remove_file(cache_dir.join(key))?;
        }
        bytes_after -= size;
        evicted.push((key.clone(), *size));
    }
    let kept = entries.len() - evicted.len();
    Ok(GcReport {
        bytes_before,
        bytes_after: if dry_run { bytes_before } else { bytes_after },
        evicted,
        pinned,
        kept,
        dry_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idyll-serve-gc-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn key(n: u8) -> String {
        format!("{n:032x}")
    }

    fn write_entry(dir: &Path, key: &str, bytes: usize) {
        fs::write(dir.join(key), "x".repeat(bytes)).unwrap();
    }

    fn write_log(path: &Path, records: &[LogRecord]) {
        let mut file = fs::File::create(path).unwrap();
        for record in records {
            writeln!(file, "{}", record.encode()).unwrap();
        }
    }

    fn sim_submit(id: u64, key: String) -> LogRecord {
        LogRecord::Submit {
            id,
            graph: 1,
            scheme: format!("job{id}"),
            payload: LogPayload::Sim {
                config: "# idyll-canon config v1\n".into(),
                spec: "# idyll-canon spec v1\n".into(),
                seed: 1,
                key,
            },
            priority: 0,
            deadline_secs: None,
            deps: vec![],
        }
    }

    #[test]
    fn evicts_oldest_by_log_order_never_pinned() {
        let dir = temp_dir("order");
        let log = dir.join("jobs.log");
        // Three finished entries (finish order 2, 1, 3), one pending.
        write_log(
            &log,
            &[
                sim_submit(1, key(1)),
                sim_submit(2, key(2)),
                sim_submit(3, key(3)),
                sim_submit(4, key(4)), // pending: submitted, never finished
                LogRecord::Finish {
                    id: 2,
                    key: key(2),
                    wall_secs: 0.1,
                },
                LogRecord::Finish {
                    id: 1,
                    key: key(1),
                    wall_secs: 0.1,
                },
                LogRecord::Finish {
                    id: 3,
                    key: key(3),
                    wall_secs: 0.1,
                },
            ],
        );
        let cache = dir.join("cache");
        fs::create_dir_all(&cache).unwrap();
        for k in 1..=4 {
            write_entry(&cache, &key(k), 100);
        }
        // Cap at 200 bytes: must evict two of the four 100-byte entries,
        // oldest finishes first (2 then 1), never the pending key 4.
        let report = run_gc(&cache, &log, 200, false).unwrap();
        assert_eq!(report.bytes_before, 400);
        assert_eq!(report.bytes_after, 200);
        assert_eq!(report.pinned, 1);
        let evicted: Vec<&str> = report.evicted.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(evicted, vec![key(2).as_str(), key(1).as_str()]);
        assert!(!cache.join(key(2)).exists());
        assert!(cache.join(key(3)).exists());
        assert!(cache.join(key(4)).exists(), "pinned entry survives");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_entries_survive_even_under_pressure() {
        let dir = temp_dir("pinned");
        let log = dir.join("jobs.log");
        write_log(&log, &[sim_submit(1, key(1))]); // pending forever
        let cache = dir.join("cache");
        fs::create_dir_all(&cache).unwrap();
        write_entry(&cache, &key(1), 500);
        // Cap of zero, but the only entry is pinned: nothing happens.
        let report = run_gc(&cache, &log, 0, false).unwrap();
        assert!(report.evicted.is_empty());
        assert_eq!(report.bytes_after, 500);
        assert!(cache.join(key(1)).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unlogged_legacy_entries_evict_first_and_dry_run_deletes_nothing() {
        let dir = temp_dir("legacy");
        let log = dir.join("jobs.log");
        write_log(
            &log,
            &[
                sim_submit(1, key(1)),
                LogRecord::Finish {
                    id: 1,
                    key: key(1),
                    wall_secs: 0.1,
                },
            ],
        );
        let cache = dir.join("cache");
        fs::create_dir_all(&cache).unwrap();
        write_entry(&cache, &key(1), 100);
        write_entry(&cache, &key(9), 100); // never logged
        let dry = run_gc(&cache, &log, 100, true).unwrap();
        assert_eq!(
            dry.evicted
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec![key(9).as_str()],
            "legacy entry ranks before logged entry"
        );
        assert_eq!(dry.bytes_after, dry.bytes_before, "dry run frees nothing");
        assert!(cache.join(key(9)).exists(), "dry run deletes nothing");
        let real = run_gc(&cache, &log, 100, false).unwrap();
        assert_eq!(real.bytes_after, 100);
        assert!(!cache.join(key(9)).exists());
        assert!(cache.join(key(1)).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_log_treats_everything_as_legacy() {
        let dir = temp_dir("nolog");
        let cache = dir.join("cache");
        fs::create_dir_all(&cache).unwrap();
        write_entry(&cache, &key(1), 50);
        write_entry(&cache, &key(2), 50);
        let report = run_gc(&cache, &dir.join("absent.log"), 60, false).unwrap();
        // Lexicographic: key(1) evicts first.
        assert_eq!(report.evicted.len(), 1);
        assert_eq!(report.evicted[0].0, key(1));
        assert_eq!(report.pinned, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
