//! Thin synchronous client for the experiment service.
//!
//! One [`Client`] wraps one TCP connection; requests and responses are
//! strictly alternating, so the client is a line-in/line-out loop. The
//! high-level [`run_cells`] helper is what `idyll_bench` uses to route a
//! grid through a running daemon: it submits, backs off on `busy`, waits
//! for every result and rebuilds `TimedRun`s that are drop-in replacements
//! for `run_jobs_timed` output.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use mgpu_system::canon;
use mgpu_system::config::SystemConfig;
use mgpu_system::runner::TimedRun;
use workloads::WorkloadSpec;

use crate::proto::{GraphJob, GraphPayload, JobSpec, JobState, Request, Response, WatchEvent};

/// One simulation cell described by value, ready to submit.
#[derive(Debug, Clone)]
pub struct RemoteCell {
    /// Display label copied into the report's `scheme` field.
    pub scheme: String,
    /// Full system configuration.
    pub config: SystemConfig,
    /// Workload spec (the daemon regenerates the trace deterministically).
    pub spec: WorkloadSpec,
    /// Workload seed.
    pub seed: u64,
}

impl RemoteCell {
    fn to_job_spec(&self) -> JobSpec {
        JobSpec {
            scheme: self.scheme.clone(),
            config: canon::encode_config(&self.config),
            spec: canon::encode_spec(&self.spec),
            seed: self.seed,
        }
    }
}

fn protocol_error(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port`).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    /// I/O failures, or `InvalidData` when the response line is malformed
    /// or the connection closes mid-exchange.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        self.writer.write_all(request.encode().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(protocol_error("server closed the connection"));
        }
        Response::decode(line.trim_end()).map_err(protocol_error)
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// I/O or protocol failures.
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(protocol_error(format!("expected pong, got {other:?}"))),
        }
    }

    /// Submits a batch, sleeping out `busy` backpressure until the daemon
    /// accepts it. Returns `(ids, cached)` in submission order.
    ///
    /// # Errors
    /// I/O or protocol failures, or the server's `error` response.
    pub fn submit_with_backoff(
        &mut self,
        jobs: &[JobSpec],
    ) -> std::io::Result<(Vec<u64>, Vec<bool>)> {
        loop {
            match self.request(&Request::Submit(jobs.to_vec()))? {
                Response::Submitted { ids, cached } => return Ok((ids, cached)),
                Response::Busy { retry_after_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(10, 5_000)));
                }
                Response::Error { message } => {
                    return Err(protocol_error(format!("submit rejected: {message}")))
                }
                other => {
                    return Err(protocol_error(format!(
                        "unexpected submit response: {other:?}"
                    )))
                }
            }
        }
    }

    /// Submits a dependency graph, sleeping out `busy` backpressure until
    /// the daemon accepts it. Returns `(graph, ids, cached)` with ids in
    /// submission order.
    ///
    /// # Errors
    /// I/O or protocol failures, or the server's `error` response.
    pub fn submit_graph_with_backoff(
        &mut self,
        jobs: &[GraphJob],
    ) -> std::io::Result<(u64, Vec<u64>, Vec<bool>)> {
        loop {
            match self.request(&Request::SubmitGraph(jobs.to_vec()))? {
                Response::GraphSubmitted { graph, ids, cached } => return Ok((graph, ids, cached)),
                Response::Busy { retry_after_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(10, 5_000)));
                }
                Response::Error { message } => {
                    return Err(protocol_error(format!("submit_graph rejected: {message}")))
                }
                other => {
                    return Err(protocol_error(format!(
                        "unexpected submit_graph response: {other:?}"
                    )))
                }
            }
        }
    }

    /// Cancels job `id` (and, transitively, everything depending on it).
    /// Returns every affected job id.
    ///
    /// # Errors
    /// I/O or protocol failures, or the server's `error` response (unknown
    /// id, or the job is already terminal).
    pub fn cancel(&mut self, id: u64) -> std::io::Result<Vec<u64>> {
        match self.request(&Request::Cancel { id })? {
            Response::Cancelled { ids } => Ok(ids),
            Response::Error { message } => {
                Err(protocol_error(format!("cancel {id} rejected: {message}")))
            }
            other => Err(protocol_error(format!(
                "unexpected cancel response: {other:?}"
            ))),
        }
    }

    /// Fetches every job of graph `graph` with its current state, in id
    /// order.
    ///
    /// # Errors
    /// I/O or protocol failures, or an unknown graph id.
    pub fn graph_status(&mut self, graph: u64) -> std::io::Result<Vec<(u64, JobState)>> {
        match self.request(&Request::GraphStatus { graph })? {
            Response::GraphStatus { jobs, .. } => Ok(jobs),
            Response::Error { message } => Err(protocol_error(format!(
                "graph_status {graph} rejected: {message}"
            ))),
            other => Err(protocol_error(format!(
                "unexpected graph_status response: {other:?}"
            ))),
        }
    }

    /// Blocks until job `id` completes; returns `(canonical report,
    /// wall_secs, cached)`.
    ///
    /// # Errors
    /// I/O or protocol failures, or the job's failure message.
    pub fn wait_result(&mut self, id: u64) -> std::io::Result<(String, f64, bool)> {
        match self.request(&Request::Result { id, wait: true })? {
            Response::JobResult {
                report,
                wall_secs,
                cached,
                ..
            } => Ok((report, wall_secs, cached)),
            Response::Error { message } => {
                Err(protocol_error(format!("job {id} failed: {message}")))
            }
            other => Err(protocol_error(format!(
                "unexpected result response: {other:?}"
            ))),
        }
    }

    /// Subscribes to job `id`'s progress stream, invoking `on_event` for
    /// every `watch_event` line (including the terminal one) and returning
    /// the terminal event. The connection is usable for further requests
    /// afterwards — the server resumes normal alternation once the stream
    /// closes.
    ///
    /// # Errors
    /// I/O or protocol failures, the server's `error` line (unknown id),
    /// or a stream that closes before a terminal event.
    pub fn watch(
        &mut self,
        id: u64,
        on_event: impl FnMut(&WatchEvent),
    ) -> std::io::Result<WatchEvent> {
        self.watch_from(id, None, on_event)
    }

    /// Like [`Client::watch`], resuming after sequence number `from_seq`
    /// (the last `seq` a previous subscription delivered): only events
    /// with a later seq are streamed. A stream that drops mid-flight
    /// surfaces as `UnexpectedEof`, letting callers such as
    /// [`watch_resumable`] reconnect and resume instead of giving up.
    ///
    /// # Errors
    /// I/O or protocol failures, the server's `error` line (unknown id),
    /// or a stream that closes before a terminal event (`UnexpectedEof`).
    pub fn watch_from(
        &mut self,
        id: u64,
        from_seq: Option<u64>,
        mut on_event: impl FnMut(&WatchEvent),
    ) -> std::io::Result<WatchEvent> {
        let request = Request::Watch { id, from_seq };
        self.writer.write_all(request.encode().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the watch stream",
                ));
            }
            match Response::decode(line.trim_end()).map_err(protocol_error)? {
                Response::Watch(event) => {
                    on_event(&event);
                    if event.last {
                        return Ok(event);
                    }
                }
                Response::Error { message } => {
                    return Err(protocol_error(format!("watch {id} failed: {message}")))
                }
                other => {
                    return Err(protocol_error(format!(
                        "unexpected watch response: {other:?}"
                    )))
                }
            }
        }
    }

    /// Fetches the service metrics registry as JSON.
    ///
    /// # Errors
    /// I/O or protocol failures.
    pub fn metrics_json(&mut self) -> std::io::Result<String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            other => Err(protocol_error(format!(
                "unexpected metrics response: {other:?}"
            ))),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    /// I/O or protocol failures.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(protocol_error(format!(
                "unexpected shutdown response: {other:?}"
            ))),
        }
    }
}

/// Runs a set of cells through the daemon at `addr` on one connection:
/// submit with backoff, wait for every result, return them in cell order
/// as [`TimedRun`]s (cache hits report `wall_secs` 0).
///
/// # Errors
/// I/O or protocol failures, a rejected batch, or any failed job.
pub fn run_cells(addr: &str, cells: &[RemoteCell]) -> std::io::Result<Vec<TimedRun>> {
    let mut client = Client::connect(addr)?;
    let jobs: Vec<JobSpec> = cells.iter().map(RemoteCell::to_job_spec).collect();
    let (ids, _cached) = client.submit_with_backoff(&jobs)?;
    if ids.len() != cells.len() {
        return Err(protocol_error(format!(
            "submitted {} cells, got {} ids",
            cells.len(),
            ids.len()
        )));
    }
    let mut runs = Vec::with_capacity(ids.len());
    for (cell, id) in cells.iter().zip(ids) {
        let (report_text, wall_secs, _cached) = client.wait_result(id)?;
        let report = canon::decode_report(&report_text)
            .map_err(|e| protocol_error(format!("job {id}: bad report: {e}")))?;
        runs.push(TimedRun {
            scheme: cell.scheme.clone(),
            report,
            wall_secs,
            profile: None,
        });
    }
    Ok(runs)
}

/// Runs a set of cells through the daemon at `addr` as one dependency
/// graph: every cell as a sim job plus one `reduce` barrier depending on
/// all of them, so the daemon tracks grid completion as a unit (and a
/// restarted daemon resumes it from the durable log). Waits on the
/// barrier first — any cell failure surfaces there — then fetches every
/// cell result in cell order as [`TimedRun`]s (cache hits report
/// `wall_secs` 0). Byte-identical to [`run_cells`] and to the local loop:
/// the DAG only changes scheduling, never simulation inputs.
///
/// # Errors
/// I/O or protocol failures, a rejected batch, or any failed job.
pub fn run_cells_dag(addr: &str, cells: &[RemoteCell]) -> std::io::Result<Vec<TimedRun>> {
    let mut client = Client::connect(addr)?;
    let mut jobs: Vec<GraphJob> = cells
        .iter()
        .map(|cell| GraphJob {
            scheme: cell.scheme.clone(),
            payload: GraphPayload::Sim {
                config: canon::encode_config(&cell.config),
                spec: canon::encode_spec(&cell.spec),
                seed: cell.seed,
            },
            priority: 0,
            deadline_secs: None,
            deps: Vec::new(),
        })
        .collect();
    jobs.push(GraphJob {
        scheme: "reduce".to_string(),
        payload: GraphPayload::Reduce,
        priority: 0,
        deadline_secs: None,
        deps: (0..cells.len() as u64).collect(),
    });
    let (_graph, ids, _cached) = client.submit_graph_with_backoff(&jobs)?;
    if ids.len() != cells.len() + 1 {
        return Err(protocol_error(format!(
            "submitted {} graph jobs, got {} ids",
            cells.len() + 1,
            ids.len()
        )));
    }
    let reduce_id = *ids.last().expect("batch has a reduce job");
    // The barrier completes only when every cell did; a cell failure
    // fails it transitively, surfacing here before any result fetch.
    client.wait_result(reduce_id)?;
    let mut runs = Vec::with_capacity(cells.len());
    for (cell, id) in cells.iter().zip(&ids) {
        let (report_text, wall_secs, _cached) = client.wait_result(*id)?;
        let report = canon::decode_report(&report_text)
            .map_err(|e| protocol_error(format!("job {id}: bad report: {e}")))?;
        runs.push(TimedRun {
            scheme: cell.scheme.clone(),
            report,
            wall_secs,
            profile: None,
        });
    }
    Ok(runs)
}

/// Whether a watch error is worth a reconnect: connection-level failures
/// (the daemon restarted, the network hiccuped) are; protocol-level
/// failures (`InvalidData`: unknown id, malformed line) are not.
fn watch_error_is_retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::TimedOut
    )
}

/// Watches job `id` at `addr` with automatic reconnection: when the TCP
/// connection drops mid-stream (daemon restart, network blip), reconnects
/// and resumes the subscription from the last seen sequence number
/// instead of erroring out — `on_event` never sees a duplicate. Gives up
/// after repeated consecutive connection failures, or immediately on a
/// protocol-level error.
///
/// # Errors
/// A protocol-level failure (unknown id, malformed line), or exhausted
/// reconnection attempts.
pub fn watch_resumable(
    addr: &str,
    id: u64,
    mut on_event: impl FnMut(&WatchEvent),
) -> std::io::Result<WatchEvent> {
    const MAX_CONSECUTIVE_FAILURES: u32 = 25;
    let mut last_seen: Option<u64> = None;
    let mut failures = 0u32;
    loop {
        let attempt = Client::connect(addr).and_then(|mut client| {
            let from_seq = last_seen;
            client.watch_from(id, from_seq, |event| {
                last_seen = Some(event.seq);
                on_event(event);
            })
        });
        match attempt {
            Ok(terminal) => return Ok(terminal),
            Err(e) if watch_error_is_retryable(&e) => {
                failures += 1;
                if failures >= MAX_CONSECUTIVE_FAILURES {
                    return Err(std::io::Error::new(
                        e.kind(),
                        format!("watch {id}: giving up after {failures} reconnect attempts: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reads one `Count` metric out of a metrics-registry JSON document; the
/// registry's flat `"name": value` rendering makes this a string scan, not
/// a JSON walk.
#[must_use]
pub fn metric_count(metrics_json: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\": ");
    let start = metrics_json.find(&needle)? + needle.len();
    let rest = &metrics_json[start..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_count_scans_registry_json() {
        let json = "{\n  \"serve.cache_hits\": 42,\n  \"serve.cache_misses\": 7\n}\n";
        assert_eq!(metric_count(json, "serve.cache_hits"), Some(42));
        assert_eq!(metric_count(json, "serve.cache_misses"), Some(7));
        assert_eq!(metric_count(json, "serve.absent"), None);
    }
}
