//! Thin synchronous client for the experiment service.
//!
//! One [`Client`] wraps one TCP connection; requests and responses are
//! strictly alternating, so the client is a line-in/line-out loop. The
//! high-level [`run_cells`] helper is what `idyll_bench` uses to route a
//! grid through a running daemon: it submits, backs off on `busy`, waits
//! for every result and rebuilds `TimedRun`s that are drop-in replacements
//! for `run_jobs_timed` output.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use mgpu_system::canon;
use mgpu_system::config::SystemConfig;
use mgpu_system::runner::TimedRun;
use workloads::WorkloadSpec;

use crate::proto::{JobSpec, Request, Response, WatchEvent};

/// One simulation cell described by value, ready to submit.
#[derive(Debug, Clone)]
pub struct RemoteCell {
    /// Display label copied into the report's `scheme` field.
    pub scheme: String,
    /// Full system configuration.
    pub config: SystemConfig,
    /// Workload spec (the daemon regenerates the trace deterministically).
    pub spec: WorkloadSpec,
    /// Workload seed.
    pub seed: u64,
}

impl RemoteCell {
    fn to_job_spec(&self) -> JobSpec {
        JobSpec {
            scheme: self.scheme.clone(),
            config: canon::encode_config(&self.config),
            spec: canon::encode_spec(&self.spec),
            seed: self.seed,
        }
    }
}

fn protocol_error(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port`).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    /// I/O failures, or `InvalidData` when the response line is malformed
    /// or the connection closes mid-exchange.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        self.writer.write_all(request.encode().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(protocol_error("server closed the connection"));
        }
        Response::decode(line.trim_end()).map_err(protocol_error)
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// I/O or protocol failures.
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(protocol_error(format!("expected pong, got {other:?}"))),
        }
    }

    /// Submits a batch, sleeping out `busy` backpressure until the daemon
    /// accepts it. Returns `(ids, cached)` in submission order.
    ///
    /// # Errors
    /// I/O or protocol failures, or the server's `error` response.
    pub fn submit_with_backoff(
        &mut self,
        jobs: &[JobSpec],
    ) -> std::io::Result<(Vec<u64>, Vec<bool>)> {
        loop {
            match self.request(&Request::Submit(jobs.to_vec()))? {
                Response::Submitted { ids, cached } => return Ok((ids, cached)),
                Response::Busy { retry_after_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(10, 5_000)));
                }
                Response::Error { message } => {
                    return Err(protocol_error(format!("submit rejected: {message}")))
                }
                other => {
                    return Err(protocol_error(format!(
                        "unexpected submit response: {other:?}"
                    )))
                }
            }
        }
    }

    /// Blocks until job `id` completes; returns `(canonical report,
    /// wall_secs, cached)`.
    ///
    /// # Errors
    /// I/O or protocol failures, or the job's failure message.
    pub fn wait_result(&mut self, id: u64) -> std::io::Result<(String, f64, bool)> {
        match self.request(&Request::Result { id, wait: true })? {
            Response::JobResult {
                report,
                wall_secs,
                cached,
                ..
            } => Ok((report, wall_secs, cached)),
            Response::Error { message } => {
                Err(protocol_error(format!("job {id} failed: {message}")))
            }
            other => Err(protocol_error(format!(
                "unexpected result response: {other:?}"
            ))),
        }
    }

    /// Subscribes to job `id`'s progress stream, invoking `on_event` for
    /// every `watch_event` line (including the terminal one) and returning
    /// the terminal event. The connection is usable for further requests
    /// afterwards — the server resumes normal alternation once the stream
    /// closes.
    ///
    /// # Errors
    /// I/O or protocol failures, the server's `error` line (unknown id),
    /// or a stream that closes before a terminal event.
    pub fn watch(
        &mut self,
        id: u64,
        mut on_event: impl FnMut(&WatchEvent),
    ) -> std::io::Result<WatchEvent> {
        let request = Request::Watch { id };
        self.writer.write_all(request.encode().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(protocol_error("server closed the watch stream"));
            }
            match Response::decode(line.trim_end()).map_err(protocol_error)? {
                Response::Watch(event) => {
                    on_event(&event);
                    if event.last {
                        return Ok(event);
                    }
                }
                Response::Error { message } => {
                    return Err(protocol_error(format!("watch {id} failed: {message}")))
                }
                other => {
                    return Err(protocol_error(format!(
                        "unexpected watch response: {other:?}"
                    )))
                }
            }
        }
    }

    /// Fetches the service metrics registry as JSON.
    ///
    /// # Errors
    /// I/O or protocol failures.
    pub fn metrics_json(&mut self) -> std::io::Result<String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            other => Err(protocol_error(format!(
                "unexpected metrics response: {other:?}"
            ))),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    /// I/O or protocol failures.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(protocol_error(format!(
                "unexpected shutdown response: {other:?}"
            ))),
        }
    }
}

/// Runs a set of cells through the daemon at `addr` on one connection:
/// submit with backoff, wait for every result, return them in cell order
/// as [`TimedRun`]s (cache hits report `wall_secs` 0).
///
/// # Errors
/// I/O or protocol failures, a rejected batch, or any failed job.
pub fn run_cells(addr: &str, cells: &[RemoteCell]) -> std::io::Result<Vec<TimedRun>> {
    let mut client = Client::connect(addr)?;
    let jobs: Vec<JobSpec> = cells.iter().map(RemoteCell::to_job_spec).collect();
    let (ids, _cached) = client.submit_with_backoff(&jobs)?;
    if ids.len() != cells.len() {
        return Err(protocol_error(format!(
            "submitted {} cells, got {} ids",
            cells.len(),
            ids.len()
        )));
    }
    let mut runs = Vec::with_capacity(ids.len());
    for (cell, id) in cells.iter().zip(ids) {
        let (report_text, wall_secs, _cached) = client.wait_result(id)?;
        let report = canon::decode_report(&report_text)
            .map_err(|e| protocol_error(format!("job {id}: bad report: {e}")))?;
        runs.push(TimedRun {
            scheme: cell.scheme.clone(),
            report,
            wall_secs,
            profile: None,
        });
    }
    Ok(runs)
}

/// Reads one `Count` metric out of a metrics-registry JSON document; the
/// registry's flat `"name": value` rendering makes this a string scan, not
/// a JSON walk.
#[must_use]
pub fn metric_count(metrics_json: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\": ");
    let start = metrics_json.find(&needle)? + needle.len();
    let rest = &metrics_json[start..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_count_scans_registry_json() {
        let json = "{\n  \"serve.cache_hits\": 42,\n  \"serve.cache_misses\": 7\n}\n";
        assert_eq!(metric_count(json, "serve.cache_hits"), Some(42));
        assert_eq!(metric_count(json, "serve.cache_misses"), Some(7));
        assert_eq!(metric_count(json, "serve.absent"), None);
    }
}
