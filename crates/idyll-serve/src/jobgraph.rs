//! Durable DAG job graph: append-only log, strict replay, ready-set order.
//!
//! The daemon's scheduling state is reconstructible from one append-only
//! NDJSON file (`results/jobs.log` by default): one [`LogRecord`] per
//! line, versioned like the `canon` encodings (`"v": 1` on every record)
//! with strict decoders — unknown record kinds, unknown fields, missing
//! fields and malformed lines are errors, with one deliberate exception:
//! a final line without a trailing newline is a torn write from a crash
//! and is dropped, not rejected.
//!
//! ## Record schema (v1)
//!
//! | `rec`    | fields                                                        |
//! |----------|---------------------------------------------------------------|
//! | `submit` | `id, graph, kind, scheme, priority, deps[, deadline_secs]` + for `kind:"sim"`: `config, spec, seed, key` |
//! | `start`  | `id`                                                          |
//! | `finish` | `id, key, wall_secs`                                          |
//! | `fail`   | `id, error`                                                   |
//! | `cancel` | `id`                                                          |
//!
//! `submit` carries the *full* canonical config/spec documents, so a
//! restarted daemon can rerun any pending job from the log alone — no
//! client has to resubmit. Dependency edges always point backwards
//! (`dep id < job id`), which makes every logged graph acyclic by
//! construction and lets replay resolve states in one forward pass.
//!
//! ## Replay rules
//!
//! Records fold in file order; for repeated terminal records the last one
//! wins (a rerun after cache loss legitimately re-logs `finish`). After
//! the fold, jobs resolve in id order:
//!
//! 1. `finish` + cache hit on `key` → done, served from cache.
//! 2. `finish` + cache *miss* → pending again (the log has everything
//!    needed to rerun; the report bytes will be identical).
//! 3. `fail`/`cancel` → terminal as recorded.
//! 4. no terminal record → pending (a `start` without `finish` is a run
//!    the crash interrupted; it reruns).
//! 5. a pending job with a failed or cancelled dependency is a *dangling
//!    dependent*: it fails now, and the failure is appended to the log so
//!    the next replay sees it directly.
//! 6. a pending `reduce` whose dependencies are all done completes
//!    immediately (its manifest is a pure function of its dependencies).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

use crate::json::Json;

/// Current log format version; bump when the record schema changes.
pub const LOG_VERSION: u64 = 1;

/// What a submitted job runs: a simulation cell, or a reduce barrier that
/// completes when its dependencies do and publishes a manifest of them.
#[derive(Debug, Clone, PartialEq)]
pub enum LogPayload {
    /// A simulation cell, fully described by value.
    Sim {
        /// Canonical `SystemConfig` document.
        config: String,
        /// Canonical `WorkloadSpec` document.
        spec: String,
        /// Workload seed.
        seed: u64,
        /// Content address (`canon::job_key`) — the cache key.
        key: String,
    },
    /// A dependency barrier; its result is [`reduce_manifest`].
    Reduce,
}

/// One line of the durable job log.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A job entered the graph.
    Submit {
        /// Assigned job id (monotonic across the log).
        id: u64,
        /// The graph this job belongs to.
        graph: u64,
        /// Display label.
        scheme: String,
        /// What the job runs.
        payload: LogPayload,
        /// Dispatch priority (higher runs first).
        priority: u32,
        /// Optional per-job deadline overriding the daemon default.
        deadline_secs: Option<f64>,
        /// Dependency job ids; always `< id`.
        deps: Vec<u64>,
    },
    /// A worker picked the job up.
    Start {
        /// The job.
        id: u64,
    },
    /// The job finished; its report is cached under `key` (sim) or
    /// recomputable from its dependencies (reduce, `key` empty).
    Finish {
        /// The job.
        id: u64,
        /// Cache key of the stored report (empty for reduce jobs).
        key: String,
        /// Host seconds the run took.
        wall_secs: f64,
    },
    /// The job failed.
    Fail {
        /// The job.
        id: u64,
        /// Human-readable cause.
        error: String,
    },
    /// The job was cancelled.
    Cancel {
        /// The job.
        id: u64,
    },
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl LogRecord {
    /// Renders the record as one NDJSON line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut fields = vec![("v", Json::u64(LOG_VERSION))];
        match self {
            LogRecord::Submit {
                id,
                graph,
                scheme,
                payload,
                priority,
                deadline_secs,
                deps,
            } => {
                fields.push(("rec", Json::str("submit")));
                fields.push(("id", Json::u64(*id)));
                fields.push(("graph", Json::u64(*graph)));
                fields.push(("scheme", Json::str(scheme)));
                match payload {
                    LogPayload::Sim {
                        config,
                        spec,
                        seed,
                        key,
                    } => {
                        fields.push(("kind", Json::str("sim")));
                        fields.push(("config", Json::str(config)));
                        fields.push(("spec", Json::str(spec)));
                        fields.push(("seed", Json::u64(*seed)));
                        fields.push(("key", Json::str(key)));
                    }
                    LogPayload::Reduce => fields.push(("kind", Json::str("reduce"))),
                }
                fields.push(("priority", Json::u64(u64::from(*priority))));
                if let Some(d) = deadline_secs {
                    fields.push(("deadline_secs", Json::f64(*d)));
                }
                fields.push((
                    "deps",
                    Json::Arr(deps.iter().map(|d| Json::u64(*d)).collect()),
                ));
            }
            LogRecord::Start { id } => {
                fields.push(("rec", Json::str("start")));
                fields.push(("id", Json::u64(*id)));
            }
            LogRecord::Finish { id, key, wall_secs } => {
                fields.push(("rec", Json::str("finish")));
                fields.push(("id", Json::u64(*id)));
                fields.push(("key", Json::str(key)));
                fields.push(("wall_secs", Json::f64(*wall_secs)));
            }
            LogRecord::Fail { id, error } => {
                fields.push(("rec", Json::str("fail")));
                fields.push(("id", Json::u64(*id)));
                fields.push(("error", Json::str(error)));
            }
            LogRecord::Cancel { id } => {
                fields.push(("rec", Json::str("cancel")));
                fields.push(("id", Json::u64(*id)));
            }
        }
        obj(fields).encode()
    }

    /// Parses one NDJSON line. Strict: unknown `rec`, unknown fields,
    /// missing fields and unsupported versions are all errors.
    ///
    /// # Errors
    /// A human-readable message on malformed input.
    pub fn decode(line: &str) -> Result<LogRecord, String> {
        let v = Json::parse(line)?;
        let Json::Obj(ref obj_fields) = v else {
            return Err("log record is not an object".to_string());
        };
        let version = v.get("v").and_then(Json::as_u64).ok_or("missing `v`")?;
        if version != LOG_VERSION {
            return Err(format!(
                "unsupported log version {version} (this build reads v{LOG_VERSION})"
            ));
        }
        let rec = v.get("rec").and_then(Json::as_str).ok_or("missing `rec`")?;
        let need_u64 = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or(format!("{rec}: missing `{name}`"))
        };
        let need_str = |name: &str| {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("{rec}: missing `{name}`"))
        };
        let strict_fields = |allowed: &[&str]| {
            for (k, _) in obj_fields {
                if !allowed.contains(&k.as_str()) {
                    return Err(format!("{rec}: unknown field `{k}`"));
                }
            }
            Ok(())
        };
        let record = match rec {
            "submit" => {
                let kind = need_str("kind")?;
                let payload = match kind.as_str() {
                    "sim" => {
                        strict_fields(&[
                            "v",
                            "rec",
                            "id",
                            "graph",
                            "scheme",
                            "kind",
                            "config",
                            "spec",
                            "seed",
                            "key",
                            "priority",
                            "deadline_secs",
                            "deps",
                        ])?;
                        LogPayload::Sim {
                            config: need_str("config")?,
                            spec: need_str("spec")?,
                            seed: need_u64("seed")?,
                            key: need_str("key")?,
                        }
                    }
                    "reduce" => {
                        strict_fields(&[
                            "v",
                            "rec",
                            "id",
                            "graph",
                            "scheme",
                            "kind",
                            "priority",
                            "deadline_secs",
                            "deps",
                        ])?;
                        LogPayload::Reduce
                    }
                    other => return Err(format!("submit: unknown kind `{other}`")),
                };
                let deps = v
                    .get("deps")
                    .and_then(Json::as_arr)
                    .ok_or("submit: missing `deps`")?
                    .iter()
                    .map(|d| d.as_u64().ok_or("submit: bad dep id".to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
                let priority = u32::try_from(need_u64("priority")?)
                    .map_err(|_| "submit: priority out of range".to_string())?;
                LogRecord::Submit {
                    id: need_u64("id")?,
                    graph: need_u64("graph")?,
                    scheme: need_str("scheme")?,
                    payload,
                    priority,
                    deadline_secs: v.get("deadline_secs").and_then(Json::as_f64),
                    deps,
                }
            }
            "start" => {
                strict_fields(&["v", "rec", "id"])?;
                LogRecord::Start {
                    id: need_u64("id")?,
                }
            }
            "finish" => {
                strict_fields(&["v", "rec", "id", "key", "wall_secs"])?;
                LogRecord::Finish {
                    id: need_u64("id")?,
                    key: need_str("key")?,
                    wall_secs: v
                        .get("wall_secs")
                        .and_then(Json::as_f64)
                        .ok_or("finish: missing `wall_secs`")?,
                }
            }
            "fail" => {
                strict_fields(&["v", "rec", "id", "error"])?;
                LogRecord::Fail {
                    id: need_u64("id")?,
                    error: need_str("error")?,
                }
            }
            "cancel" => {
                strict_fields(&["v", "rec", "id"])?;
                LogRecord::Cancel {
                    id: need_u64("id")?,
                }
            }
            other => return Err(format!("unknown log record `{other}`")),
        };
        Ok(record)
    }
}

/// Parses a whole log file. A final line without a trailing newline is a
/// torn write from a crash: it is dropped. Every terminated line must
/// decode strictly.
///
/// # Errors
/// The first malformed terminated line, with its 1-based line number.
pub fn parse_log(text: &str) -> Result<Vec<LogRecord>, String> {
    let complete = match text.rfind('\n') {
        Some(last_newline) => &text[..=last_newline],
        None => "", // a single torn line, or an empty file
    };
    complete
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            LogRecord::decode(line).map_err(|e| format!("jobs.log line {}: {e}", i + 1))
        })
        .collect()
}

/// The append side of the durable log. All methods take `&self`; appends
/// are serialised by an internal mutex and flushed per record, so the
/// strongest torn-write case a crash can leave is one incomplete final
/// line — exactly what [`parse_log`] tolerates.
#[derive(Debug)]
pub struct JobLog {
    file: Mutex<Option<std::fs::File>>,
}

impl JobLog {
    /// A no-op log (daemon configured without durability).
    #[must_use]
    pub fn disabled() -> JobLog {
        JobLog {
            file: Mutex::new(None),
        }
    }

    /// Opens (creating if needed) the log at `path`, returning the handle
    /// and every record already on disk, in file order.
    ///
    /// # Errors
    /// I/O failures, or `InvalidData` when an existing record fails the
    /// strict decoder.
    pub fn open(path: &Path) -> std::io::Result<(JobLog, Vec<LogRecord>)> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => parse_log(&text)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok((
            JobLog {
                file: Mutex::new(Some(file)),
            },
            existing,
        ))
    }

    /// Appends one record and flushes it. Failures degrade to a warning:
    /// the in-memory scheduler is still correct, only crash recovery is
    /// weakened — same policy as cache-write failures.
    pub fn append(&self, record: &LogRecord) {
        let mut guard = self.file.lock().expect("job log lock");
        if let Some(file) = guard.as_mut() {
            let mut line = record.encode();
            line.push('\n');
            if let Err(e) = file.write_all(line.as_bytes()).and_then(|()| file.flush()) {
                eprintln!("idyll-serve: job log append failed: {e}");
            }
        }
    }
}

/// How a replayed job comes back to life.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// Finished before the crash; `report` holds the served bytes.
    Done {
        /// The canonical report (from cache, or a recomputed manifest).
        report: String,
    },
    /// Failed (as recorded, or as a dangling dependent found at replay).
    Failed(String),
    /// Cancelled before the crash.
    Cancelled,
    /// Still has work to do; goes back through the scheduler.
    Pending,
}

/// One job reconstructed from the log.
#[derive(Debug, Clone)]
pub struct ReplayJob {
    /// Job id (preserved across restarts).
    pub id: u64,
    /// Graph id (preserved across restarts).
    pub graph: u64,
    /// Display label.
    pub scheme: String,
    /// What the job runs.
    pub payload: LogPayload,
    /// Dispatch priority.
    pub priority: u32,
    /// Optional per-job deadline.
    pub deadline_secs: Option<f64>,
    /// Dependency job ids.
    pub deps: Vec<u64>,
    /// Resolved state.
    pub disposition: Disposition,
}

/// The result of replaying a log against the current cache.
#[derive(Debug)]
pub struct Replay {
    /// Every logged job in id order with its resolved state.
    pub jobs: Vec<ReplayJob>,
    /// First id the restarted daemon may assign.
    pub next_id: u64,
    /// First graph id the restarted daemon may assign.
    pub next_graph: u64,
    /// Records the replay itself produced (dangling-dependent failures,
    /// reduce completions); the caller appends them so the next replay
    /// reads them directly.
    pub appended: Vec<LogRecord>,
}

#[derive(Debug, Clone)]
enum Terminal {
    Finished { key: String },
    Failed(String),
    Cancelled,
}

/// Replays `records` (file order) against the cache, applying the replay
/// rules in the module docs.
///
/// # Errors
/// A human-readable message when the log violates its invariants
/// (duplicate submits, unknown ids, forward dependency edges).
pub fn replay(
    records: &[LogRecord],
    cache_get: &dyn Fn(&str) -> Option<String>,
) -> Result<Replay, String> {
    struct Entry {
        graph: u64,
        scheme: String,
        payload: LogPayload,
        priority: u32,
        deadline_secs: Option<f64>,
        deps: Vec<u64>,
        terminal: Option<Terminal>,
    }
    let mut entries: BTreeMap<u64, Entry> = BTreeMap::new();
    let mut next_graph = 1u64;
    for record in records {
        match record {
            LogRecord::Submit {
                id,
                graph,
                scheme,
                payload,
                priority,
                deadline_secs,
                deps,
            } => {
                if entries.contains_key(id) {
                    return Err(format!("duplicate submit for job {id}"));
                }
                for dep in deps {
                    if dep >= id {
                        return Err(format!("job {id}: forward dependency edge to {dep}"));
                    }
                    if !entries.contains_key(dep) {
                        return Err(format!("job {id}: unknown dependency {dep}"));
                    }
                }
                entries.insert(
                    *id,
                    Entry {
                        graph: *graph,
                        scheme: scheme.clone(),
                        payload: payload.clone(),
                        priority: *priority,
                        deadline_secs: *deadline_secs,
                        deps: deps.clone(),
                        terminal: None,
                    },
                );
                next_graph = next_graph.max(graph + 1);
            }
            LogRecord::Start { id } => {
                if !entries.contains_key(id) {
                    return Err(format!("start for unknown job {id}"));
                }
            }
            LogRecord::Finish { id, key, .. } => {
                entries
                    .get_mut(id)
                    .ok_or(format!("finish for unknown job {id}"))?
                    .terminal = Some(Terminal::Finished { key: key.clone() });
            }
            LogRecord::Fail { id, error } => {
                entries
                    .get_mut(id)
                    .ok_or(format!("fail for unknown job {id}"))?
                    .terminal = Some(Terminal::Failed(error.clone()));
            }
            LogRecord::Cancel { id } => {
                entries
                    .get_mut(id)
                    .ok_or(format!("cancel for unknown job {id}"))?
                    .terminal = Some(Terminal::Cancelled);
            }
        }
    }

    let next_id = entries.keys().next_back().map_or(1, |max| max + 1);
    let mut jobs = Vec::with_capacity(entries.len());
    let mut dispositions: BTreeMap<u64, Disposition> = BTreeMap::new();
    let mut appended = Vec::new();
    // Id order: dependency edges point backwards, so every dep's
    // disposition is already resolved when its dependent is visited.
    for (&id, entry) in &entries {
        let manifest = || {
            let dep_keys: Vec<(u64, String)> = entry
                .deps
                .iter()
                .map(|d| {
                    let key = match &entries[d].payload {
                        LogPayload::Sim { key, .. } => key.clone(),
                        LogPayload::Reduce => String::new(),
                    };
                    (*d, key)
                })
                .collect();
            reduce_manifest(entry.graph, &dep_keys)
        };
        let mut disposition = match &entry.terminal {
            Some(Terminal::Finished { key }) => match &entry.payload {
                LogPayload::Sim { .. } => match cache_get(key) {
                    Some(report) => Disposition::Done { report },
                    // Rule 2: the cache entry was lost (GC, disk loss);
                    // rerun from the log — the bytes will be identical.
                    None => Disposition::Pending,
                },
                LogPayload::Reduce => Disposition::Done { report: manifest() },
            },
            Some(Terminal::Failed(e)) => Disposition::Failed(e.clone()),
            Some(Terminal::Cancelled) => Disposition::Cancelled,
            None => Disposition::Pending,
        };
        if disposition == Disposition::Pending {
            let broken_dep = entry.deps.iter().find(|d| {
                matches!(
                    dispositions.get(d),
                    Some(Disposition::Failed(_) | Disposition::Cancelled)
                )
            });
            if let Some(dep) = broken_dep {
                // Rule 5: dangling dependent.
                let error = format!("dependency {dep} did not complete");
                appended.push(LogRecord::Fail {
                    id,
                    error: error.clone(),
                });
                disposition = Disposition::Failed(error);
            } else if matches!(entry.payload, LogPayload::Reduce)
                && entry
                    .deps
                    .iter()
                    .all(|d| matches!(dispositions.get(d), Some(Disposition::Done { .. })))
            {
                // Rule 6: reduce with every dependency done.
                appended.push(LogRecord::Finish {
                    id,
                    key: String::new(),
                    wall_secs: 0.0,
                });
                disposition = Disposition::Done { report: manifest() };
            }
        }
        dispositions.insert(id, disposition.clone());
        jobs.push(ReplayJob {
            id,
            graph: entry.graph,
            scheme: entry.scheme.clone(),
            payload: entry.payload.clone(),
            priority: entry.priority,
            deadline_secs: entry.deadline_secs,
            deps: entry.deps.clone(),
            disposition,
        });
    }
    Ok(Replay {
        jobs,
        next_id,
        next_graph,
        appended,
    })
}

/// The canonical result document of a reduce job: one `dep` line per
/// dependency in edge order, carrying its id and cache key (`-` for
/// dependencies that are themselves reduce jobs). A pure function of the
/// graph shape, so it is byte-identical across restarts and reruns.
#[must_use]
pub fn reduce_manifest(graph: u64, deps: &[(u64, String)]) -> String {
    let mut s = format!("# idyll-serve reduce v1\ngraph {graph}\n");
    for (id, key) in deps {
        let shown = if key.is_empty() { "-" } else { key.as_str() };
        s.push_str(&format!("dep {id} {shown}\n"));
    }
    s
}

/// The ready set: jobs whose dependencies are all done, dispatched in
/// deterministic `(priority desc, submit-seq asc)` order. Job ids are the
/// submit sequence — they are assigned monotonically and preserved across
/// restarts — so the dispatch order is reproducible from the log alone.
#[derive(Debug, Default)]
pub struct ReadyQueue {
    set: BTreeSet<(Reverse<u32>, u64)>,
}

impl ReadyQueue {
    /// Adds a job.
    pub fn push(&mut self, priority: u32, id: u64) {
        self.set.insert((Reverse(priority), id));
    }

    /// Removes and returns the next job to dispatch.
    pub fn pop(&mut self) -> Option<u64> {
        self.set.pop_first().map(|(_, id)| id)
    }

    /// Removes a specific job (cancellation); returns whether it was
    /// present.
    pub fn remove(&mut self, priority: u32, id: u64) -> bool {
        self.set.remove(&(Reverse(priority), id))
    }

    /// Jobs currently ready.
    #[must_use]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no job is ready.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_submit(id: u64, deps: Vec<u64>, priority: u32) -> LogRecord {
        LogRecord::Submit {
            id,
            graph: 1,
            scheme: format!("job{id}"),
            payload: LogPayload::Sim {
                config: "# idyll-canon config v1\n".into(),
                spec: "# idyll-canon spec v1\n".into(),
                seed: 42,
                key: format!("{id:032x}"),
            },
            priority,
            deadline_secs: None,
            deps,
        }
    }

    fn reduce_submit(id: u64, deps: Vec<u64>) -> LogRecord {
        LogRecord::Submit {
            id,
            graph: 1,
            scheme: format!("reduce{id}"),
            payload: LogPayload::Reduce,
            priority: 0,
            deadline_secs: None,
            deps,
        }
    }

    #[test]
    fn records_roundtrip() {
        let with_deadline = match sim_submit(4, vec![], 0) {
            LogRecord::Submit {
                id,
                graph,
                scheme,
                payload,
                priority,
                deps,
                ..
            } => LogRecord::Submit {
                id,
                graph,
                scheme,
                payload,
                priority,
                deadline_secs: Some(1.5),
                deps,
            },
            other => panic!("sim_submit builds a submit: {other:?}"),
        };
        let records = [
            sim_submit(3, vec![1, 2], 7),
            with_deadline,
            reduce_submit(5, vec![3, 4]),
            LogRecord::Start { id: 3 },
            LogRecord::Finish {
                id: 3,
                key: format!("{:032x}", 3u64),
                wall_secs: 0.25,
            },
            LogRecord::Fail {
                id: 4,
                error: "simulation error: boom".into(),
            },
            LogRecord::Cancel { id: 5 },
        ];
        for record in records {
            let line = record.encode();
            assert!(!line.contains('\n'), "one line per record: {line}");
            assert_eq!(LogRecord::decode(&line).unwrap(), record);
        }
    }

    #[test]
    fn decode_is_strict() {
        // Unknown version.
        assert!(LogRecord::decode("{\"v\":2,\"rec\":\"start\",\"id\":1}").is_err());
        // Unknown record kind.
        assert!(LogRecord::decode("{\"v\":1,\"rec\":\"nope\",\"id\":1}").is_err());
        // Unknown field.
        assert!(LogRecord::decode("{\"v\":1,\"rec\":\"start\",\"id\":1,\"x\":2}").is_err());
        // Missing field.
        assert!(LogRecord::decode("{\"v\":1,\"rec\":\"finish\",\"id\":1}").is_err());
        // Not JSON at all.
        assert!(LogRecord::decode("finish 1").is_err());
    }

    #[test]
    fn torn_final_line_is_dropped_but_bad_lines_are_not() {
        let good = LogRecord::Start { id: 1 }.encode();
        let submit = sim_submit(1, vec![], 0).encode();
        // A torn final line (no trailing newline) parses as if absent.
        let torn = format!("{submit}\n{good}\n{{\"v\":1,\"rec\":\"fini");
        let records = parse_log(&torn).expect("torn tail tolerated");
        assert_eq!(records.len(), 2);
        // A malformed *terminated* line is an error.
        let bad = format!("{submit}\nnot json\n");
        let err = parse_log(&bad).expect_err("strict");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn replay_resolves_states_and_fails_dangling_dependents() {
        let key1 = format!("{:032x}", 1u64);
        let records = vec![
            sim_submit(1, vec![], 0),
            sim_submit(2, vec![], 0),
            sim_submit(3, vec![2], 0),
            sim_submit(4, vec![], 0),
            sim_submit(5, vec![4], 0),
            reduce_submit(6, vec![1, 2]),
            LogRecord::Start { id: 1 },
            LogRecord::Finish {
                id: 1,
                key: key1.clone(),
                wall_secs: 0.5,
            },
            LogRecord::Start { id: 2 },
            LogRecord::Fail {
                id: 4,
                error: "boom".into(),
            },
        ];
        let cache = move |key: &str| (key == key1).then(|| "report 1\n".to_string());
        let replayed = replay(&records, &cache).expect("valid log");
        assert_eq!(replayed.next_id, 7);
        assert_eq!(replayed.next_graph, 2);
        let by_id: BTreeMap<u64, &ReplayJob> = replayed.jobs.iter().map(|j| (j.id, j)).collect();
        // 1 finished with a cache hit: done, served bytes.
        assert_eq!(
            by_id[&1].disposition,
            Disposition::Done {
                report: "report 1\n".into()
            }
        );
        // 2 started but never finished: pending (reruns).
        assert_eq!(by_id[&2].disposition, Disposition::Pending);
        // 3 waits on 2: still pending.
        assert_eq!(by_id[&3].disposition, Disposition::Pending);
        // 4 failed as recorded; 5 is a dangling dependent.
        assert_eq!(by_id[&4].disposition, Disposition::Failed("boom".into()));
        assert!(
            matches!(&by_id[&5].disposition, Disposition::Failed(e) if e.contains("dependency 4"))
        );
        // 6 reduces over {1, 2}; 2 is pending, so the reduce waits too.
        assert_eq!(by_id[&6].disposition, Disposition::Pending);
        // The dangling failure is appended for the next replay.
        assert!(replayed
            .appended
            .iter()
            .any(|r| matches!(r, LogRecord::Fail { id: 5, .. })));
    }

    #[test]
    fn replay_reruns_on_cache_loss_and_completes_ready_reduces() {
        let records = vec![
            sim_submit(1, vec![], 0),
            sim_submit(2, vec![], 0),
            reduce_submit(3, vec![1, 2]),
            LogRecord::Finish {
                id: 1,
                key: format!("{:032x}", 1u64),
                wall_secs: 0.5,
            },
            LogRecord::Finish {
                id: 2,
                key: format!("{:032x}", 2u64),
                wall_secs: 0.5,
            },
        ];
        // Cache serves job 1 but lost job 2.
        let key1 = format!("{:032x}", 1u64);
        let cache = move |key: &str| (key == key1).then(|| "r1".to_string());
        let replayed = replay(&records, &cache).expect("valid log");
        assert_eq!(replayed.jobs[1].disposition, Disposition::Pending);
        // The reduce therefore stays pending.
        assert_eq!(replayed.jobs[2].disposition, Disposition::Pending);

        // With both entries cached, the reduce completes at replay and a
        // finish record is appended.
        let cache_all = |_: &str| Some("r".to_string());
        let replayed = replay(&records, &cache_all).expect("valid log");
        match &replayed.jobs[2].disposition {
            Disposition::Done { report } => {
                assert!(report.starts_with("# idyll-serve reduce v1\n"), "{report}");
                assert!(report.contains(&format!("dep 1 {:032x}", 1u64)), "{report}");
            }
            other => panic!("reduce should complete: {other:?}"),
        }
        assert!(replayed
            .appended
            .iter()
            .any(|r| matches!(r, LogRecord::Finish { id: 3, .. })));
    }

    #[test]
    fn replay_rejects_invalid_logs() {
        // Duplicate submit.
        let dup = vec![sim_submit(1, vec![], 0), sim_submit(1, vec![], 0)];
        assert!(replay(&dup, &|_| None).is_err());
        // Forward edge.
        let fwd = vec![sim_submit(1, vec![1], 0)];
        assert!(replay(&fwd, &|_| None).is_err());
        // Unknown id.
        let unknown = vec![LogRecord::Start { id: 9 }];
        assert!(replay(&unknown, &|_| None).is_err());
    }

    #[test]
    fn ready_queue_orders_by_priority_then_seq() {
        let mut q = ReadyQueue::default();
        q.push(0, 10);
        q.push(5, 12);
        q.push(5, 11);
        q.push(1, 9);
        assert_eq!(q.len(), 4);
        // Highest priority first; ties break on submit sequence.
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(12));
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn job_log_appends_and_reopens() {
        let dir = std::env::temp_dir().join(format!("idyll-jobgraph-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("jobs.log");
        {
            let (log, existing) = JobLog::open(&path).expect("open");
            assert!(existing.is_empty());
            log.append(&sim_submit(1, vec![], 3));
            log.append(&LogRecord::Start { id: 1 });
        }
        let (_log, existing) = JobLog::open(&path).expect("reopen");
        assert_eq!(existing.len(), 2);
        assert_eq!(existing[1], LogRecord::Start { id: 1 });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
