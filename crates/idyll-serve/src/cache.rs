//! Content-addressed result cache.
//!
//! Keys are the 128-bit content addresses from [`mgpu_system::canon::job_key`]
//! — a fixed-seed hash of the canonical `(config, spec, seed)` encoding —
//! and values are canonical report documents. Because the simulator is
//! deterministic, a cached report is byte-identical to re-running the cell,
//! so serving from cache is indistinguishable from simulating (minus the
//! wall-clock).
//!
//! The cache is two-level: an in-memory map for the running daemon, backed
//! by one file per key under a cache directory (`results/cache/` by
//! default) so results survive restarts. Writes go through a temp file and
//! an atomic rename; concurrent writers of the same key race benignly
//! because they write identical bytes.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use sim_engine::collections::DetHashMap;

/// The report store. All methods take `&self`; the internal map is locked.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    map: Mutex<DetHashMap<String, String>>,
}

impl ResultCache {
    /// An in-memory cache with no persistence.
    #[must_use]
    pub fn in_memory() -> Self {
        ResultCache {
            dir: None,
            map: Mutex::new(DetHashMap::default()),
        }
    }

    /// Opens (creating if needed) a persistent cache rooted at `dir`,
    /// loading every existing entry eagerly. Files whose names are not
    /// 32 hex digits are ignored.
    ///
    /// # Errors
    /// Propagates directory creation/read failures.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        let mut map = DetHashMap::default();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(key) = name.to_str() else { continue };
            if key.len() == 32 && key.bytes().all(|b| b.is_ascii_hexdigit()) {
                if let Ok(report) = fs::read_to_string(entry.path()) {
                    map.insert(key.to_string(), report);
                }
            }
        }
        Ok(ResultCache {
            dir: Some(dir.to_path_buf()),
            map: Mutex::new(map),
        })
    }

    /// Number of cached results.
    ///
    /// # Panics
    /// If the internal lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the canonical report for `key`.
    ///
    /// # Panics
    /// If the internal lock is poisoned.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<String> {
        self.map.lock().expect("cache lock").get(key).cloned()
    }

    /// Stores the canonical report for `key`, persisting it when the cache
    /// is file-backed. Persistence failures are reported but do not evict
    /// the in-memory entry.
    ///
    /// # Errors
    /// Propagates file write/rename failures.
    ///
    /// # Panics
    /// If the internal lock is poisoned.
    pub fn put(&self, key: &str, report: &str) -> std::io::Result<()> {
        self.map
            .lock()
            .expect("cache lock")
            .insert(key.to_string(), report.to_string());
        if let Some(dir) = &self.dir {
            let tmp = dir.join(format!("{key}.tmp.{}", std::process::id()));
            fs::write(&tmp, report)?;
            fs::rename(&tmp, dir.join(key))?;
        }
        Ok(())
    }

    /// Evicts `key` from the map and the backing directory (GC). Returns
    /// the byte length of the removed entry, or `None` if it was absent.
    ///
    /// # Errors
    /// Propagates file removal failures (the in-memory entry is already
    /// gone by then; a rerun will regenerate identical bytes regardless).
    ///
    /// # Panics
    /// If the internal lock is poisoned.
    pub fn remove(&self, key: &str) -> std::io::Result<Option<usize>> {
        let removed = self.map.lock().expect("cache lock").remove(key);
        if let Some(dir) = &self.dir {
            match fs::remove_file(dir.join(key)) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(removed.map(|r| r.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "idyll-serve-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_cache_stores_and_serves() {
        let cache = ResultCache::in_memory();
        assert!(cache.is_empty());
        assert_eq!(cache.get("0".repeat(32).as_str()), None);
        cache.put(&"a".repeat(32), "report body\n").unwrap();
        assert_eq!(cache.get(&"a".repeat(32)).as_deref(), Some("report body\n"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn persistent_cache_survives_reopen() {
        let dir = temp_dir("reopen");
        let key = "0123456789abcdef0123456789abcdef";
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache
                .put(key, "# idyll-canon report v1\nscheme x\n")
                .unwrap();
        }
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(
            reopened.get(key).as_deref(),
            Some("# idyll-canon report v1\nscheme x\n")
        );
        // Non-key files are ignored, not loaded.
        fs::write(dir.join("README"), "not a result").unwrap();
        let again = ResultCache::open(&dir).unwrap();
        assert_eq!(again.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_rewrites_are_benign() {
        let dir = temp_dir("rewrite");
        let cache = ResultCache::open(&dir).unwrap();
        let key = "ffffffffffffffffffffffffffffffff";
        cache.put(key, "same bytes").unwrap();
        cache.put(key, "same bytes").unwrap();
        assert_eq!(cache.get(key).as_deref(), Some("same bytes"));
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_evicts_map_and_disk() {
        let dir = temp_dir("remove");
        let key = "00112233445566778899aabbccddeeff";
        let cache = ResultCache::open(&dir).unwrap();
        cache.put(key, "gone soon").unwrap();
        assert!(dir.join(key).exists());
        assert_eq!(cache.remove(key).unwrap(), Some("gone soon".len()));
        assert_eq!(cache.get(key), None);
        assert!(!dir.join(key).exists());
        // Removing an absent key is a no-op, not an error.
        assert_eq!(cache.remove(key).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
