//! End-to-end job-graph tests.
//!
//! These exercise the acceptance properties of the durable DAG scheduler:
//! graph submissions produce byte-identical per-cell reports plus a
//! deterministic reduce manifest, ready jobs dispatch in (priority,
//! submit-seq) order, cancellation propagates down dependency edges, a
//! hand-crafted crash log replays into the documented dispositions
//! (cache hits served byte-identically, lost work rerun, dangling
//! dependents failed), watch streams resume from a sequence number, and
//! the `smoke --graph` kill/restart harness passes end to end.

use std::fs;
use std::path::PathBuf;

use idyll_serve::client::Client;
use idyll_serve::jobgraph::{JobLog, LogPayload, LogRecord};
use idyll_serve::proto::{GraphJob, GraphPayload, JobState};
use idyll_serve::server::{spawn, ServerConfig};
use idyll_serve::RemoteCell;
use mgpu_system::canon;
use mgpu_system::config::SystemConfig;
use mgpu_system::runner::{run_jobs_timed, Job};
use workloads::{AppId, Scale, WorkloadSpec};

/// A small grid of distinct cells: two apps × two schemes at test scale.
fn grid_cells() -> Vec<RemoteCell> {
    let mut cells = Vec::new();
    for app in [AppId::Km, AppId::Bs] {
        for (label, config) in [
            ("baseline", SystemConfig::baseline(2)),
            ("idyll", SystemConfig::idyll(2)),
        ] {
            let mut config = config;
            config.seed = 42;
            cells.push(RemoteCell {
                scheme: format!("{app}/{label}"),
                config,
                spec: WorkloadSpec::paper_default(app, Scale::Test),
                seed: 42,
            });
        }
    }
    cells
}

fn canonical_direct(cells: &[RemoteCell]) -> Vec<String> {
    let jobs: Vec<Job> = cells
        .iter()
        .map(|cell| Job {
            scheme: cell.scheme.clone(),
            config: cell.config.clone(),
            workload: workloads::generate(&cell.spec, cell.config.n_gpus, cell.seed),
        })
        .collect();
    run_jobs_timed(jobs, 2)
        .expect("direct runs succeed")
        .into_iter()
        .map(|t| canon::encode_report(&t.report))
        .collect()
}

fn sim_job(cell: &RemoteCell, priority: u32, deps: Vec<u64>) -> GraphJob {
    GraphJob {
        scheme: cell.scheme.clone(),
        payload: GraphPayload::Sim {
            config: canon::encode_config(&cell.config),
            spec: canon::encode_spec(&cell.spec),
            seed: cell.seed,
        },
        priority,
        deadline_secs: None,
        deps,
    }
}

fn reduce_job(scheme: &str, deps: Vec<u64>) -> GraphJob {
    GraphJob {
        scheme: scheme.to_string(),
        payload: GraphPayload::Reduce,
        priority: 0,
        deadline_secs: None,
        deps,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("idyll-serve-graph-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A cells-plus-reduce DAG yields byte-identical cell reports, a manifest
/// listing every dependency's key, and a fully cached resubmission.
#[test]
fn graph_cells_reduce_to_a_manifest_and_stay_byte_identical() {
    let handle = spawn(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr.to_string();

    let cells = grid_cells();
    let direct = canonical_direct(&cells);
    let mut jobs: Vec<GraphJob> = cells.iter().map(|c| sim_job(c, 0, vec![])).collect();
    jobs.push(reduce_job("grid", (0..cells.len() as u64).collect()));

    let mut client = Client::connect(&addr).expect("connect");
    let (graph, ids, cached) = client.submit_graph_with_backoff(&jobs).expect("submit");
    assert_eq!(ids.len(), cells.len() + 1);
    assert!(cached.iter().all(|&c| !c), "fresh graph must not be cached");

    // The reduce completes only after every cell; its manifest names each
    // dependency id with its content-addressed key.
    let reduce_id = *ids.last().unwrap();
    let (manifest, _wall, _cached) = client.wait_result(reduce_id).expect("reduce result");
    assert!(
        manifest.starts_with("# idyll-serve reduce v1\n"),
        "{manifest}"
    );
    assert!(manifest.contains(&format!("graph {graph}\n")), "{manifest}");
    for (i, cell) in cells.iter().enumerate() {
        let key = canon::job_key(&cell.config, &cell.spec, cell.seed);
        assert!(
            manifest.contains(&format!("dep {} {key}\n", ids[i])),
            "manifest missing dep {}: {manifest}",
            ids[i]
        );
    }
    for (i, &id) in ids[..cells.len()].iter().enumerate() {
        let (report, _wall, was_cached) = client.wait_result(id).expect("cell result");
        assert!(!was_cached, "cell {i} cached on first pass");
        assert_eq!(report, direct[i], "cell {i} differs from the direct run");
    }

    // A graph is addressable: status lists every job as done, in id order.
    let status = client.graph_status(graph).expect("graph_status");
    assert_eq!(status.len(), ids.len());
    assert!(status.iter().all(|(_, s)| *s == JobState::Done));

    // Resubmitting the same sims hits the cache.
    let (_, ids2, cached2) = client
        .submit_graph_with_backoff(&jobs[..cells.len()])
        .expect("resubmit");
    assert!(
        cached2.iter().all(|&c| c),
        "resubmitted cells must be cached"
    );
    for (i, &id) in ids2.iter().enumerate() {
        let (report, wall, was_cached) = client.wait_result(id).expect("cached result");
        assert!(was_cached, "cell {i} not served from cache");
        assert_eq!(wall, 0.0, "cached answers report zero wall time");
        assert_eq!(report, direct[i], "cached cell {i} differs from direct");
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// With one worker, jobs released together dispatch in priority order
/// (descending), observable as `start` record order in the durable log.
#[test]
fn ready_jobs_dispatch_by_priority() {
    let dir = temp_dir("priority");
    let log_path = dir.join("jobs.log");
    let handle = spawn(ServerConfig {
        workers: 1,
        log_path: Some(log_path.clone()),
        cache_dir: Some(dir.join("cache")),
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr.to_string();

    // A gate sim holds the single worker; three dependents with
    // priorities 1, 5, 3 all become ready at once when the gate finishes.
    let cells = grid_cells();
    let jobs = vec![
        sim_job(&cells[0], 0, vec![]),
        sim_job(&cells[1], 1, vec![0]),
        sim_job(&cells[2], 5, vec![0]),
        sim_job(&cells[3], 3, vec![0]),
    ];
    let mut client = Client::connect(&addr).expect("connect");
    let (_, ids, _) = client.submit_graph_with_backoff(&jobs).expect("submit");
    for &id in &ids {
        client.wait_result(id).expect("job completes");
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");

    // The log's start records are the dispatch order: gate first, then
    // priority 5, 3, 1.
    let text = fs::read_to_string(&log_path).expect("log exists");
    let started: Vec<u64> = text
        .lines()
        .filter_map(|line| match LogRecord::decode(line) {
            Ok(LogRecord::Start { id }) => Some(id),
            _ => None,
        })
        .collect();
    assert_eq!(
        started,
        vec![ids[0], ids[2], ids[3], ids[1]],
        "dispatch must follow (priority desc, submit order)"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Cancelling a job cancels its transitive dependents, leaves unrelated
/// work queued, is observable through watch, and is idempotent-hostile
/// (a second cancel errors).
#[test]
fn cancellation_propagates_down_dependency_edges() {
    // Zero workers: nothing runs, so the queued/cancelled states are
    // deterministic.
    let handle = spawn(ServerConfig {
        workers: 0,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr.to_string();

    let cells = grid_cells();
    // Chain a → b → c, plus unrelated d.
    let jobs = vec![
        sim_job(&cells[0], 0, vec![]),
        sim_job(&cells[1], 0, vec![0]),
        sim_job(&cells[2], 0, vec![1]),
        sim_job(&cells[3], 0, vec![]),
    ];
    let mut client = Client::connect(&addr).expect("connect");
    let (graph, ids, _) = client.submit_graph_with_backoff(&jobs).expect("submit");
    let (a, b, c, d) = (ids[0], ids[1], ids[2], ids[3]);

    let affected = client.cancel(a).expect("cancel");
    assert_eq!(affected, vec![a, b, c], "cancel cascades to dependents");

    let status = client.graph_status(graph).expect("graph_status");
    for (id, state) in status {
        if id == d {
            assert_eq!(state, JobState::Queued, "unrelated job keeps its place");
        } else {
            assert_eq!(state, JobState::Cancelled, "job {id} must be cancelled");
        }
    }

    // The cascade is observable: a watch of a dependent ends in a
    // terminal cancelled line, and its result is a cancellation error.
    for id in [b, c] {
        let terminal = client.watch(id, |_| {}).expect("watch streams");
        assert_eq!(terminal.state, JobState::Cancelled);
        assert!(terminal.last);
        let err = client.wait_result(id).expect_err("cancelled jobs fail");
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    // Cancelling an already-terminal job is an error, not a no-op.
    let err = client.cancel(a).expect_err("double cancel");
    assert!(err.to_string().contains("already"), "{err}");

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// Replaying a hand-crafted crash log resolves every documented
/// disposition: finished-and-cached jobs serve byte-identical bytes,
/// finished-but-evicted jobs rerun, started-but-unfinished jobs rerun,
/// failures stick, dangling dependents fail durably, and fresh ids
/// continue past the log's maximum.
#[test]
fn replayed_log_restores_the_graph_after_a_crash() {
    let dir = temp_dir("replay");
    let log_path = dir.join("jobs.log");
    let cache_dir = dir.join("cache");
    fs::create_dir_all(&cache_dir).unwrap();

    let cells = grid_cells();
    let direct = canonical_direct(&cells);
    let key = |i: usize| canon::job_key(&cells[i].config, &cells[i].spec, cells[i].seed);
    let submit = |id: u64, graph: u64, i: usize, deps: Vec<u64>| LogRecord::Submit {
        id,
        graph,
        scheme: cells[i].scheme.clone(),
        payload: LogPayload::Sim {
            config: canon::encode_config(&cells[i].config),
            spec: canon::encode_spec(&cells[i].spec),
            seed: cells[i].seed,
            key: key(i),
        },
        priority: 0,
        deadline_secs: None,
        deps,
    };

    // The "crashed" daemon's log: graph 1 = {1, 2, reduce 3}; 1 finished
    // (and its report survives in the cache), 2 started but never
    // finished. Graph 2 = {4, 5←4}; 4 failed.
    {
        let (log, records) = JobLog::open(&log_path).expect("fresh log");
        assert!(records.is_empty());
        for record in [
            submit(1, 1, 0, vec![]),
            submit(2, 1, 1, vec![]),
            LogRecord::Submit {
                id: 3,
                graph: 1,
                scheme: "reduce".into(),
                payload: LogPayload::Reduce,
                priority: 0,
                deadline_secs: None,
                deps: vec![1, 2],
            },
            submit(4, 2, 2, vec![]),
            submit(5, 2, 3, vec![4]),
            LogRecord::Start { id: 1 },
            LogRecord::Finish {
                id: 1,
                key: key(0),
                wall_secs: 0.5,
            },
            LogRecord::Start { id: 2 },
            LogRecord::Fail {
                id: 4,
                error: "simulation error: boom".into(),
            },
        ] {
            log.append(&record);
        }
    }
    fs::write(cache_dir.join(key(0)), &direct[0]).unwrap();

    let handle = spawn(ServerConfig {
        workers: 1,
        log_path: Some(log_path),
        cache_dir: Some(cache_dir),
        ..ServerConfig::default()
    })
    .expect("daemon replays and starts");
    let addr = handle.addr.to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // 1 finished before the crash: served from cache, byte-identical.
    let (report, wall, cached) = client.wait_result(1).expect("cached survivor");
    assert!(cached, "finished job must be served from cache");
    assert_eq!(wall, 0.0);
    assert_eq!(report, direct[0], "cached bytes differ from direct run");

    // 2 was mid-flight: rerun, still byte-identical to a direct run.
    let (report, _wall, cached) = client.wait_result(2).expect("rerun survivor");
    assert!(!cached, "interrupted job must rerun");
    assert_eq!(report, direct[1], "rerun bytes differ from direct run");

    // The reduce completes once 2 reruns, naming both keys.
    let (manifest, _, _) = client.wait_result(3).expect("reduce completes");
    assert!(
        manifest.contains(&format!("dep 1 {}\n", key(0))),
        "{manifest}"
    );
    assert!(
        manifest.contains(&format!("dep 2 {}\n", key(1))),
        "{manifest}"
    );

    // 4 failed before the crash; 5 is its dangling dependent.
    let err = client.wait_result(4).expect_err("failure sticks");
    assert!(err.to_string().contains("boom"), "{err}");
    let err = client.wait_result(5).expect_err("dependent fails");
    assert!(err.to_string().contains("dependency 4"), "{err}");

    // Fresh submissions pick up ids past the replayed maximum.
    let (_, ids, _) = client
        .submit_graph_with_backoff(&[sim_job(&cells[0], 0, vec![])])
        .expect("fresh submit");
    assert!(
        ids[0] > 5,
        "replayed ids must not be reused: got {}",
        ids[0]
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
    let _ = fs::remove_dir_all(&dir);
}

/// Watch streams resume: `from_seq` skips already-seen events, a
/// caught-up terminal watch re-sends the terminal line, and a stale seq
/// from a daemon's previous life falls back to a full replay.
#[test]
fn watch_resumes_from_a_sequence_number() {
    let handle = spawn(ServerConfig {
        workers: 1,
        // Low cadence so even test-scale jobs emit progress heartbeats.
        progress_every_events: 1_000,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr.to_string();

    let cells = grid_cells();
    let mut client = Client::connect(&addr).expect("connect");
    let (_, ids, _) = client
        .submit_graph_with_backoff(&[sim_job(&cells[0], 0, vec![])])
        .expect("submit");
    let id = ids[0];
    client.wait_result(id).expect("job completes");

    // From seq 0: the full buffered history, strictly increasing from 1.
    let mut seqs = Vec::new();
    let terminal = client
        .watch_from(id, Some(0), |ev| seqs.push(ev.seq))
        .expect("full replay");
    assert_eq!(terminal.state, JobState::Done);
    assert!(seqs.len() >= 2, "history must hold at least submit+done");
    assert_eq!(seqs[0], 1, "history starts at seq 1");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "seqs increase: {seqs:?}"
    );

    // Resuming after the first event yields exactly the rest.
    let mut resumed = Vec::new();
    client
        .watch_from(id, Some(seqs[0]), |ev| resumed.push(ev.seq))
        .expect("resume");
    assert_eq!(resumed, seqs[1..], "resume must skip already-seen events");

    // A caught-up watch of a finished job re-sends the terminal line.
    let mut caught_up = Vec::new();
    let terminal = client
        .watch_from(id, Some(*seqs.last().unwrap()), |ev| caught_up.push(ev.seq))
        .expect("caught-up watch");
    assert!(terminal.last);
    assert_eq!(caught_up, vec![*seqs.last().unwrap()]);

    // A seq from a previous daemon epoch (beyond anything buffered) is
    // treated as 0: full replay instead of a hang.
    let mut stale = Vec::new();
    client
        .watch_from(id, Some(1_000_000), |ev| stale.push(ev.seq))
        .expect("stale seq");
    assert_eq!(stale, seqs, "stale seq must fall back to a full replay");

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// The `smoke --graph` harness — submit a DAG, kill the daemon
/// mid-flight, restart on the same log and cache, byte-compare every
/// result against direct runs — passes as a subprocess, exactly as CI
/// runs it.
#[test]
fn smoke_graph_survives_a_daemon_kill() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_idyll-serve"))
        .args(["smoke", "--graph", "--jobs", "4"])
        .status()
        .expect("smoke runs");
    assert!(status.success(), "smoke --graph failed: {status}");
}
