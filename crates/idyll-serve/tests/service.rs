//! End-to-end service tests.
//!
//! These exercise the acceptance properties of the experiment service:
//! served answers are byte-identical to direct `run_jobs_timed` output, a
//! resubmitted batch is served entirely from the cache without new
//! simulation events, full queues push back with a retry hint, and the
//! cache key is stable across processes and hostile `IDYLL_HASH_SEED`
//! values.

use idyll_serve::proto::{JobSpec, JobState, Request, Response};
use idyll_serve::server::{spawn, ServerConfig};
use idyll_serve::{metric_count, Client, RemoteCell};
use mgpu_system::canon;
use mgpu_system::config::SystemConfig;
use mgpu_system::runner::{run_jobs_timed, Job};
use workloads::{AppId, Scale, WorkloadSpec};

/// A small grid of distinct cells: two apps × two schemes at test scale.
fn grid_cells() -> Vec<RemoteCell> {
    let mut cells = Vec::new();
    for app in [AppId::Km, AppId::Bs] {
        for (label, config) in [
            ("baseline", SystemConfig::baseline(2)),
            ("idyll", SystemConfig::idyll(2)),
        ] {
            let mut config = config;
            config.seed = 42;
            cells.push(RemoteCell {
                scheme: format!("{app}/{label}"),
                config,
                spec: WorkloadSpec::paper_default(app, Scale::Test),
                seed: 42,
            });
        }
    }
    cells
}

fn canonical_direct(cells: &[RemoteCell]) -> Vec<String> {
    let jobs: Vec<Job> = cells
        .iter()
        .map(|cell| Job {
            scheme: cell.scheme.clone(),
            config: cell.config.clone(),
            workload: workloads::generate(&cell.spec, cell.config.n_gpus, cell.seed),
        })
        .collect();
    run_jobs_timed(jobs, 2)
        .expect("direct runs succeed")
        .into_iter()
        .map(|t| canon::encode_report(&t.report))
        .collect()
}

fn job_specs(cells: &[RemoteCell]) -> Vec<JobSpec> {
    cells
        .iter()
        .map(|cell| JobSpec {
            scheme: cell.scheme.clone(),
            config: canon::encode_config(&cell.config),
            spec: canon::encode_spec(&cell.spec),
            seed: cell.seed,
        })
        .collect()
}

#[test]
fn served_results_are_byte_identical_and_resubmits_hit_the_cache() {
    let handle = spawn(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr.to_string();

    let cells = grid_cells();
    let direct = canonical_direct(&cells);
    let specs = job_specs(&cells);

    // Pass 1: all jobs are new; every served report must match the direct
    // run byte for byte.
    let mut client = Client::connect(&addr).expect("connect");
    let (ids, cached) = client.submit_with_backoff(&specs).expect("submit");
    assert_eq!(ids.len(), cells.len());
    assert!(
        cached.iter().all(|&c| !c),
        "first submission must not be cached"
    );
    for (i, &id) in ids.iter().enumerate() {
        let (report, _wall, was_cached) = client.wait_result(id).expect("result");
        assert!(!was_cached, "cell {i} served from cache on first pass");
        assert_eq!(
            report, direct[i],
            "cell {i} ({}) differs from the direct run",
            cells[i].scheme
        );
    }

    let metrics = client.metrics_json().expect("metrics");
    let hits_before = metric_count(&metrics, "serve.cache_hits").unwrap_or(0);
    let events_before = metric_count(&metrics, "serve.sim_events_total").unwrap_or(0);
    assert!(events_before > 0, "first pass must simulate");

    // Pass 2: identical batch; everything must come from the cache with
    // zero new simulation events and unchanged bytes.
    let (ids2, cached2) = client.submit_with_backoff(&specs).expect("resubmit");
    assert!(
        cached2.iter().all(|&c| c),
        "resubmission must be fully cached"
    );
    for (i, &id) in ids2.iter().enumerate() {
        let (report, wall, was_cached) = client.wait_result(id).expect("cached result");
        assert!(was_cached, "cell {i} not served from cache");
        assert_eq!(wall, 0.0, "cached answers report zero wall time");
        assert_eq!(report, direct[i], "cached cell {i} differs from direct");
    }

    let metrics = client.metrics_json().expect("metrics after resubmit");
    let hits_after = metric_count(&metrics, "serve.cache_hits").unwrap_or(0);
    let events_after = metric_count(&metrics, "serve.sim_events_total").unwrap_or(0);
    assert_eq!(
        hits_after - hits_before,
        cells.len() as u64,
        "every resubmitted job must count as a cache hit"
    );
    assert_eq!(
        events_after, events_before,
        "cache hits must not run the simulator"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// A `watch` subscription streams the job to its terminal state, reports
/// the true event total, and leaves the connection usable; watching is
/// pure observation, so the served report stays byte-identical to a
/// direct run. Unknown ids answer with a single error line.
#[test]
fn watch_streams_progress_without_perturbing_results() {
    let handle = spawn(ServerConfig {
        workers: 1,
        // Low cadence so even test-scale jobs emit heartbeats.
        progress_every_events: 1_000,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr.to_string();

    let cells = grid_cells();
    let cell = &cells[0];
    let direct = canonical_direct(std::slice::from_ref(cell));
    let specs = job_specs(std::slice::from_ref(cell));

    let mut client = Client::connect(&addr).expect("connect");
    let (ids, cached) = client.submit_with_backoff(&specs).expect("submit");
    assert_eq!(cached, vec![false], "fresh job must not be cached");
    let id = ids[0];

    let mut events_seen = Vec::new();
    let terminal = client
        .watch(id, |event| {
            assert_eq!(event.id, id);
            events_seen.push((event.state.clone(), event.events, event.last));
        })
        .expect("watch streams to completion");
    assert!(!events_seen.is_empty(), "stream must produce lines");
    assert_eq!(terminal.state, JobState::Done);
    assert!(terminal.last, "terminal line must be flagged final");
    // Non-terminal lines never carry the final flag.
    for (_, _, last) in &events_seen[..events_seen.len() - 1] {
        assert!(!last, "only the terminal line is final");
    }

    // The connection resumes normal request/response alternation, and the
    // watched job's report matches the direct run byte for byte.
    let (report, _wall, _cached) = client.wait_result(id).expect("result after watch");
    assert_eq!(report, direct[0], "watched job differs from direct run");
    // The terminal heartbeat carries the completed run's event total
    // (the canonical report renders it as an `events_processed <n>` line).
    let direct_events = report
        .lines()
        .find_map(|l| l.strip_prefix("events_processed "))
        .expect("canonical report lists events_processed")
        .trim()
        .to_string();
    assert_eq!(
        terminal
            .events
            .expect("terminal line reports events")
            .to_string(),
        direct_events,
        "terminal watch line must carry the true event total"
    );

    // Watching an already-finished job yields one immediate terminal line.
    let terminal_again = client
        .watch(id, |event| assert!(event.last))
        .expect("watch of a done job");
    assert_eq!(terminal_again.state, JobState::Done);

    // Unknown ids get a single error line, then the connection still works.
    let err = client.watch(987_654, |_| {}).expect_err("unknown id fails");
    assert!(err.to_string().contains("unknown job id"));
    client.ping().expect("connection survives a failed watch");

    // The grown metrics surface is present once a job ran.
    let metrics = client.metrics_json().expect("metrics");
    for needle in [
        "serve.queue_wait_us",
        "serve.run_wall_us",
        "serve.cache_hit_rate",
    ] {
        assert!(metrics.contains(needle), "metrics missing {needle}");
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

#[test]
fn full_queue_pushes_back_with_a_retry_hint() {
    // Zero workers: admitted jobs stay queued forever, making the
    // backpressure path deterministic.
    let handle = spawn(ServerConfig {
        workers: 0,
        queue_capacity: 2,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr.to_string();

    let cells = grid_cells();
    let specs = job_specs(&cells);

    let mut client = Client::connect(&addr).expect("connect");
    // First two fit exactly; the batch is admitted atomically.
    match client
        .request(&Request::Submit(specs[..2].to_vec()))
        .expect("submit")
    {
        Response::Submitted { ids, .. } => assert_eq!(ids.len(), 2),
        other => panic!("expected admission, got {other:?}"),
    }
    // The queue is now full: one more job must be rejected, whole-batch,
    // with a positive retry hint.
    match client
        .request(&Request::Submit(specs[2..3].to_vec()))
        .expect("submit over capacity")
    {
        Response::Busy { retry_after_ms } => {
            assert!(retry_after_ms > 0, "retry hint must be positive");
        }
        other => panic!("expected busy, got {other:?}"),
    }

    // Shutdown discards the never-run queue and still exits cleanly.
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// Runs the installed binary's `key` subcommand under a chosen
/// `IDYLL_HASH_SEED` and returns the printed key.
fn key_from_subprocess(hash_seed: Option<&str>) -> String {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_idyll-serve"));
    cmd.args([
        "key", "--app", "KM", "--scale", "test", "--scheme", "idyll", "--n-gpus", "2", "--seed",
        "42",
    ]);
    match hash_seed {
        Some(seed) => cmd.env("IDYLL_HASH_SEED", seed),
        None => cmd.env_remove("IDYLL_HASH_SEED"),
    };
    let out = cmd.output().expect("key subcommand runs");
    assert!(
        out.status.success(),
        "key subcommand failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("key is utf-8")
        .trim()
        .to_string()
}

#[test]
fn cache_key_is_stable_across_processes_and_hash_seeds() {
    // In-process reference key for the same cell.
    let mut config = SystemConfig::idyll(2);
    config.seed = 42;
    let spec = WorkloadSpec::paper_default(AppId::Km, Scale::Test);
    let reference = canon::job_key(&config, &spec, 42);
    assert_eq!(reference.len(), 32, "key is 128 bits of hex");

    // Fresh processes, with and without a hostile hash-seed override, must
    // all derive the same key — otherwise a daemon restarted under a
    // different environment would miss its own persisted cache.
    let plain = key_from_subprocess(None);
    let hostile_a = key_from_subprocess(Some("1"));
    let hostile_b = key_from_subprocess(Some("deadbeef"));
    assert_eq!(plain, reference);
    assert_eq!(hostile_a, reference);
    assert_eq!(hostile_b, reference);
}
