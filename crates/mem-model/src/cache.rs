//! Tag-only cache model used for the GPU data caches.
//!
//! IDYLL's results depend on data-access *latency classes* (L1 hit, L2 hit,
//! local DRAM, remote DRAM) rather than data contents, so the cache tracks
//! presence only.

use sim_engine::stats::Counter;

use crate::assoc::SetAssoc;

/// Geometry of a cache: total bytes, associativity and line size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    size_bytes: u64,
    ways: usize,
    line_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    /// Panics unless `size_bytes` is divisible by `ways * line_bytes` and
    /// all parameters are non-zero.
    pub fn new(size_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(size_bytes > 0 && ways > 0 && line_bytes > 0);
        assert_eq!(
            size_bytes % (ways as u64 * line_bytes),
            0,
            "size must divide evenly into sets"
        );
        CacheGeometry {
            size_bytes,
            ways,
            line_bytes,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.ways as u64 * self.line_bytes)) as usize
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }
}

/// A tag-only set-associative cache with LRU replacement and hit/miss
/// statistics.
///
/// Addresses are byte addresses; the cache internally reduces them to line
/// tags.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: SetAssoc<()>,
    geometry: CacheGeometry,
    hits: Counter,
    misses: Counter,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        Cache {
            lines: SetAssoc::new(geometry.sets(), geometry.ways()),
            geometry,
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr / self.geometry.line_bytes
    }

    /// Accesses byte address `addr`: returns `true` on a hit. On a miss the
    /// line is allocated (allocate-on-miss for both reads and writes).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        if self.lines.get(line).is_some() {
            self.hits.inc();
            true
        } else {
            self.misses.inc();
            self.lines.insert(line, ());
            false
        }
    }

    /// Probes without allocating or refreshing.
    pub fn contains(&self, addr: u64) -> bool {
        self.lines.contains(self.line_of(addr))
    }

    /// Invalidates every line belonging to the page starting at
    /// `page_base` with `page_bytes` size. Returns lines dropped.
    ///
    /// Used when a page migrates away: its cached lines must not serve stale
    /// data.
    pub fn invalidate_page(&mut self, page_base: u64, page_bytes: u64) -> usize {
        let first = page_base / self.geometry.line_bytes;
        let last = (page_base + page_bytes - 1) / self.geometry.line_bytes;
        self.lines
            .invalidate_matching(|tag, _| tag >= first && tag <= last)
    }

    /// Drops all lines.
    pub fn flush(&mut self) -> usize {
        self.lines.flush()
    }

    /// Cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Hit rate in `[0,1]`; zero when never accessed.
    pub fn hit_rate(&self) -> f64 {
        sim_engine::stats::hit_rate(self.hits.get(), self.misses.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B
        Cache::new(CacheGeometry::new(512, 2, 64))
    }

    #[test]
    fn geometry_derives_sets() {
        let g = CacheGeometry::new(256 * 1024, 16, 64);
        assert_eq!(g.sets(), 256);
        assert_eq!(g.ways(), 16);
        assert_eq!(g.size_bytes(), 256 * 1024);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f), "same 64B line");
        assert!(!c.access(0x140), "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn conflict_evicts_lru() {
        let mut c = small();
        // Lines mapping to set 0 (line numbers ≡ 0 mod 4): 0, 4, 8 → bytes 0, 0x100, 0x200.
        c.access(0x000);
        c.access(0x100);
        c.access(0x000); // refresh line 0
        c.access(0x200); // evicts line 4 (0x100)
        assert!(c.contains(0x000));
        assert!(!c.contains(0x100));
        assert!(c.contains(0x200));
    }

    #[test]
    fn invalidate_page_drops_only_that_page() {
        let mut c = Cache::new(CacheGeometry::new(64 * 1024, 4, 64));
        c.access(0x1000);
        c.access(0x1fc0);
        c.access(0x2000); // next page
        let dropped = c.invalidate_page(0x1000, 4096);
        assert_eq!(dropped, 2);
        assert!(!c.contains(0x1000));
        assert!(c.contains(0x2000));
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(0);
        c.access(64);
        assert_eq!(c.flush(), 2);
        assert!(!c.contains(0));
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_geometry_panics() {
        let _ = CacheGeometry::new(1000, 3, 64);
    }
}
