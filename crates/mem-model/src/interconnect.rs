//! System interconnect: NVLink mesh between GPUs plus the PCIe host link.
//!
//! The baseline (Table 2) uses 300 GB/s NVLink-v2 between GPUs and 32 GB/s
//! PCIe-v4 between CPU and each GPU. At the 1 GHz simulation clock that is
//! 300 B/cycle and 32 B/cycle respectively. Every pair of endpoints gets a
//! dedicated full-duplex pipe pair, approximating a fully-connected NVLink
//! topology (as in DGX-class systems).

use sim_engine::{resource::BandwidthPipe, Cycle};

/// Identifier of a GPU in the system (0-based).
pub type GpuId = usize;

/// One directed pipe's diagnostics: (label, transfers, bytes, next_free).
pub type PipeStat = (String, u64, u64, Cycle);

/// An endpoint on the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// The host CPU running the UVM driver.
    Host,
    /// A GPU.
    Gpu(GpuId),
}

impl std::fmt::Display for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Host => write!(f, "host"),
            Node::Gpu(g) => write!(f, "gpu{g}"),
        }
    }
}

/// Interconnect configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectConfig {
    /// A GPU's *aggregate* NVLink bandwidth in bytes per cycle (300 for
    /// NVLink-v2 at 1 GHz). In the fully-connected topology each directed
    /// peer pipe gets `aggregate / (n_gpus - 1)` of it, as the physical
    /// links are split across peers (e.g. 2-of-6 links per pair in a 4-GPU
    /// DGX).
    pub nvlink_bytes_per_cycle: f64,
    /// GPU↔GPU one-way latency in cycles (fine-grained peer loads traverse
    /// the full cross-GPU path; ~1 µs round trips on real hardware).
    pub nvlink_latency: Cycle,
    /// Host↔GPU bandwidth in bytes per cycle (32 for PCIe-v4 at 1 GHz).
    pub pcie_bytes_per_cycle: f64,
    /// Host↔GPU one-way propagation latency in cycles.
    pub pcie_latency: Cycle,
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        InterconnectConfig {
            nvlink_bytes_per_cycle: 300.0,
            nvlink_latency: Cycle(150),
            pcie_bytes_per_cycle: 32.0,
            pcie_latency: Cycle(150),
        }
    }
}

/// The system interconnect: one full-duplex pipe per directed endpoint pair.
///
/// # Example
///
/// ```
/// use mem_model::interconnect::{Interconnect, InterconnectConfig, Node};
/// use sim_engine::Cycle;
///
/// let mut net = Interconnect::new(2, InterconnectConfig::default());
/// // A 64-byte cacheline from GPU 0 to GPU 1.
/// let done = net.send(Cycle(0), Node::Gpu(0), Node::Gpu(1), 64);
/// assert!(done > Cycle(0));
/// ```
#[derive(Debug)]
pub struct Interconnect {
    n_gpus: usize,
    /// `gpu_links[src][dst]` — directed GPU-to-GPU pipes.
    gpu_links: Vec<Vec<BandwidthPipe>>,
    /// `host_down[g]`: host→GPU g; `host_up[g]`: GPU g→host.
    host_down: Vec<BandwidthPipe>,
    host_up: Vec<BandwidthPipe>,
    config: InterconnectConfig,
}

impl Interconnect {
    /// Builds an interconnect for `n_gpus` GPUs.
    ///
    /// # Panics
    /// Panics if `n_gpus == 0`.
    pub fn new(n_gpus: usize, config: InterconnectConfig) -> Self {
        assert!(n_gpus > 0, "need at least one GPU");
        let per_pair = config.nvlink_bytes_per_cycle / (n_gpus.saturating_sub(1).max(1)) as f64;
        let nv = |_: usize| BandwidthPipe::new(per_pair, config.nvlink_latency);
        let pc = |_: usize| BandwidthPipe::new(config.pcie_bytes_per_cycle, config.pcie_latency);
        Interconnect {
            n_gpus,
            gpu_links: (0..n_gpus).map(|_| (0..n_gpus).map(nv).collect()).collect(),
            host_down: (0..n_gpus).map(pc).collect(),
            host_up: (0..n_gpus).map(pc).collect(),
            config,
        }
    }

    /// Number of GPUs attached.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Configuration in force.
    pub fn config(&self) -> InterconnectConfig {
        self.config
    }

    /// Sends `bytes` from `src` to `dst` starting at `now`; returns delivery
    /// time.
    ///
    /// # Panics
    /// Panics on a GPU id out of range, or on a `Host → Host` transfer
    /// (meaningless in this topology).
    pub fn send(&mut self, now: Cycle, src: Node, dst: Node, bytes: u64) -> Cycle {
        match (src, dst) {
            (Node::Gpu(a), Node::Gpu(b)) => {
                assert!(a < self.n_gpus && b < self.n_gpus, "gpu id out of range");
                if a == b {
                    // Local: no interconnect traversal.
                    return now;
                }
                self.gpu_links[a][b].transfer(now, bytes)
            }
            (Node::Host, Node::Gpu(g)) => {
                assert!(g < self.n_gpus, "gpu id out of range");
                self.host_down[g].transfer(now, bytes)
            }
            (Node::Gpu(g), Node::Host) => {
                assert!(g < self.n_gpus, "gpu id out of range");
                self.host_up[g].transfer(now, bytes)
            }
            (Node::Host, Node::Host) => panic!("host-to-host transfer is meaningless"),
        }
    }

    /// One-way propagation latency between two endpoints, ignoring load.
    pub fn latency(&self, src: Node, dst: Node) -> Cycle {
        match (src, dst) {
            (Node::Gpu(a), Node::Gpu(b)) if a == b => Cycle::ZERO,
            (Node::Gpu(_), Node::Gpu(_)) => self.config.nvlink_latency,
            (Node::Host, Node::Host) => Cycle::ZERO,
            _ => self.config.pcie_latency,
        }
    }

    /// Per-directed-pipe diagnostics: (label, transfers, bytes, next_free).
    pub fn pipe_stats(&self) -> Vec<PipeStat> {
        let mut out = Vec::new();
        for (a, row) in self.gpu_links.iter().enumerate() {
            for (b, p) in row.iter().enumerate() {
                if p.transfers() > 0 {
                    out.push((
                        format!("g{a}->g{b}"),
                        p.transfers(),
                        p.bytes_total(),
                        p.next_free(),
                    ));
                }
            }
        }
        for (g, p) in self.host_down.iter().enumerate() {
            if p.transfers() > 0 {
                out.push((
                    format!("host->g{g}"),
                    p.transfers(),
                    p.bytes_total(),
                    p.next_free(),
                ));
            }
        }
        for (g, p) in self.host_up.iter().enumerate() {
            if p.transfers() > 0 {
                out.push((
                    format!("g{g}->host"),
                    p.transfers(),
                    p.bytes_total(),
                    p.next_free(),
                ));
            }
        }
        out
    }

    /// Total bytes moved over GPU↔GPU links.
    pub fn nvlink_bytes(&self) -> u64 {
        self.gpu_links
            .iter()
            .flat_map(|row| row.iter().map(|p| p.bytes_total()))
            .sum()
    }

    /// Total bytes moved over host links (both directions).
    pub fn pcie_bytes(&self) -> u64 {
        self.host_down
            .iter()
            .chain(self.host_up.iter())
            .map(|p| p.bytes_total())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Interconnect {
        Interconnect::new(4, InterconnectConfig::default())
    }

    #[test]
    fn gpu_to_gpu_uses_nvlink_latency() {
        let mut n = net();
        let done = n.send(Cycle(0), Node::Gpu(0), Node::Gpu(1), 64);
        // 64B at 100B/cy per pair rounds to 1 cycle occupancy + 150 latency.
        assert_eq!(done, Cycle(151));
        assert_eq!(n.nvlink_bytes(), 64);
        assert_eq!(n.pcie_bytes(), 0);
    }

    #[test]
    fn host_link_is_slower() {
        let mut n = net();
        let via_pcie = n.send(Cycle(0), Node::Gpu(0), Node::Host, 4096);
        let mut n2 = net();
        let via_nvlink = n2.send(Cycle(0), Node::Gpu(0), Node::Gpu(1), 4096);
        assert!(via_pcie > via_nvlink);
    }

    #[test]
    fn local_transfer_is_free() {
        let mut n = net();
        assert_eq!(
            n.send(Cycle(42), Node::Gpu(2), Node::Gpu(2), 1 << 20),
            Cycle(42)
        );
    }

    #[test]
    fn links_are_independent() {
        let mut n = net();
        // Saturate 0→1.
        let busy = n.send(Cycle(0), Node::Gpu(0), Node::Gpu(1), 3_000_000);
        assert!(busy > Cycle(10_000));
        // 0→2 is unaffected.
        let other = n.send(Cycle(0), Node::Gpu(0), Node::Gpu(2), 64);
        assert_eq!(other, Cycle(151));
        // 1→0 (reverse direction) also unaffected: full duplex.
        let rev = n.send(Cycle(0), Node::Gpu(1), Node::Gpu(0), 64);
        assert_eq!(rev, Cycle(151));
    }

    #[test]
    fn same_link_serialises() {
        let mut n = net();
        // Per-pair bandwidth in a 4-GPU system: 100 B/cy.
        let t1 = n.send(Cycle(0), Node::Gpu(0), Node::Gpu(1), 3000);
        let t2 = n.send(Cycle(0), Node::Gpu(0), Node::Gpu(1), 3000);
        assert_eq!(t1, Cycle(180));
        assert_eq!(t2, Cycle(210));
    }

    #[test]
    fn latency_probe() {
        let n = net();
        assert_eq!(n.latency(Node::Gpu(0), Node::Gpu(1)), Cycle(150));
        assert_eq!(n.latency(Node::Gpu(0), Node::Gpu(0)), Cycle::ZERO);
        assert_eq!(n.latency(Node::Host, Node::Gpu(3)), Cycle(150));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_gpu_id_panics() {
        let mut n = net();
        n.send(Cycle(0), Node::Gpu(0), Node::Gpu(9), 64);
    }
}
