//! Memory-side substrates for the IDYLL reproduction.
//!
//! This crate models the non-translation parts of the memory system that the
//! paper's evaluation depends on:
//!
//! * [`assoc::SetAssoc`] — a generic set-associative array with LRU
//!   replacement, reused by data caches, TLBs and the page-walk cache;
//! * [`cache::Cache`] — a tag-only cache model with hit/miss statistics;
//! * [`mshr::Mshr`] — miss-status holding registers that merge concurrent
//!   misses to the same block;
//! * [`dram::Dram`] — a banked latency/bandwidth DRAM model;
//! * [`interconnect::Interconnect`] — the NVLink mesh between GPUs plus the
//!   PCIe link to the host.
//!
//! # Example
//!
//! ```
//! use mem_model::cache::{Cache, CacheGeometry};
//!
//! // The baseline per-GPU L2: 256 KiB, 16-way, 64 B lines.
//! let mut l2 = Cache::new(CacheGeometry::new(256 * 1024, 16, 64));
//! assert!(!l2.access(0x4000)); // cold miss
//! assert!(l2.access(0x4000)); // now a hit
//! ```

pub mod assoc;
pub mod cache;
pub mod dram;
pub mod gpuset;
pub mod interconnect;
pub mod mshr;
