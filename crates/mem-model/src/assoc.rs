//! Generic set-associative array with true-LRU replacement.
//!
//! This is the structural workhorse shared by TLBs, data caches, the
//! page-walk cache and the VM-Cache: `sets × ways` slots, each holding a
//! `(tag, payload)` pair, with per-set LRU stamps.

/// A single occupied way.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Way<V> {
    tag: u64,
    value: V,
    stamp: u64,
}

/// What happened on an insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inserted<V> {
    /// The key was already present; its payload was replaced (old payload
    /// returned) and its recency refreshed.
    Updated(V),
    /// A free way was used.
    Filled,
    /// The LRU way was evicted; its tag and payload are returned.
    Evicted { tag: u64, value: V },
}

/// A set-associative array with per-set true-LRU replacement.
///
/// Keys are full tags (the caller is responsible for any tag/index split
/// beyond set selection, which uses `key % sets`).
///
/// # Example
///
/// ```
/// use mem_model::assoc::SetAssoc;
/// let mut sa: SetAssoc<&str> = SetAssoc::new(1, 2);
/// sa.insert(10, "a");
/// sa.insert(20, "b");
/// sa.get(10); // refresh 10 → 20 becomes LRU
/// match sa.insert(30, "c") {
///     mem_model::assoc::Inserted::Evicted { tag, .. } => assert_eq!(tag, 20),
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SetAssoc<V> {
    sets: Vec<Vec<Way<V>>>,
    ways: usize,
    clock: u64,
    /// `sets - 1` when the set count is a power of two, letting set
    /// selection use a mask instead of a 64-bit modulo. Every production
    /// geometry (TLBs, PWC, L2, VM-Cache) is a power of two, and the mask
    /// selects the identical set the modulo would.
    set_mask: Option<u64>,
}

impl<V> SetAssoc<V> {
    /// Creates an array of `sets × ways` slots.
    ///
    /// # Panics
    /// Panics if `sets == 0` or `ways == 0`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "need at least one set");
        assert!(ways > 0, "need at least one way");
        SetAssoc {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            clock: 0,
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether no entries are present.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(|s| s.is_empty())
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        match self.set_mask {
            Some(mask) => (key & mask) as usize,
            None => (key % self.sets.len() as u64) as usize,
        }
    }

    #[inline]
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up `key`, refreshing its LRU position on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let stamp = self.tick();
        let set = self.set_of(key);
        let ways = &mut self.sets[set];
        let idx = ways.iter().position(|w| w.tag == key)?;
        ways[idx].stamp = stamp;
        Some(&ways[idx].value)
    }

    /// Mutable lookup, refreshing LRU position on a hit.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let stamp = self.tick();
        let set = self.set_of(key);
        let ways = &mut self.sets[set];
        let idx = ways.iter().position(|w| w.tag == key)?;
        ways[idx].stamp = stamp;
        Some(&mut ways[idx].value)
    }

    /// Checks presence without disturbing recency (a "probe").
    pub fn contains(&self, key: u64) -> bool {
        let set = self.set_of(key);
        self.sets[set].iter().any(|w| w.tag == key)
    }

    /// Reads without disturbing recency.
    pub fn peek(&self, key: u64) -> Option<&V> {
        let set = self.set_of(key);
        self.sets[set]
            .iter()
            .find(|w| w.tag == key)
            .map(|w| &w.value)
    }

    /// Inserts `key → value`, evicting the per-set LRU entry if necessary.
    pub fn insert(&mut self, key: u64, value: V) -> Inserted<V> {
        let stamp = self.tick();
        let ways = self.ways;
        let set = self.set_of(key);
        let slot = &mut self.sets[set];
        if let Some(idx) = slot.iter().position(|w| w.tag == key) {
            slot[idx].stamp = stamp;
            let old = std::mem::replace(&mut slot[idx].value, value);
            return Inserted::Updated(old);
        }
        if slot.len() < ways {
            slot.push(Way {
                tag: key,
                value,
                stamp,
            });
            return Inserted::Filled;
        }
        let lru = slot
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.stamp)
            .map(|(i, _)| i)
            // simlint: allow(hot-path-panic) — reached only when the set is full, so the LRU scan is over a non-empty way list
            .expect("set is full, hence non-empty");
        let victim = std::mem::replace(
            &mut slot[lru],
            Way {
                tag: key,
                value,
                stamp,
            },
        );
        Inserted::Evicted {
            tag: victim.tag,
            value: victim.value,
        }
    }

    /// Removes `key`, returning its payload.
    pub fn invalidate(&mut self, key: u64) -> Option<V> {
        let set = self.set_of(key);
        let slot = &mut self.sets[set];
        let idx = slot.iter().position(|w| w.tag == key)?;
        Some(slot.swap_remove(idx).value)
    }

    /// Removes every entry matching `pred`, returning the count removed.
    pub fn invalidate_matching<F: FnMut(u64, &V) -> bool>(&mut self, mut pred: F) -> usize {
        let mut removed = 0;
        for slot in &mut self.sets {
            let before = slot.len();
            slot.retain(|w| !pred(w.tag, &w.value));
            removed += before - slot.len();
        }
        removed
    }

    /// Removes all entries.
    pub fn flush(&mut self) -> usize {
        let n = self.len();
        for slot in &mut self.sets {
            slot.clear();
        }
        n
    }

    /// Iterates over `(tag, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|w| (w.tag, &w.value)))
    }

    /// The LRU victim tag for the set `key` maps to, if that set is full.
    pub fn would_evict(&self, key: u64) -> Option<u64> {
        let set = self.set_of(key);
        let slot = &self.sets[set];
        if slot.len() < self.ways || slot.iter().any(|w| w.tag == key) {
            return None;
        }
        slot.iter().min_by_key(|w| w.stamp).map(|w| w.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(4, 2);
        assert_eq!(sa.insert(5, 50), Inserted::Filled);
        assert_eq!(sa.get(5), Some(&50));
        assert_eq!(sa.get(6), None);
        assert_eq!(sa.len(), 1);
        assert_eq!(sa.capacity(), 8);
    }

    #[test]
    fn update_returns_old_value() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(1, 2);
        sa.insert(1, 10);
        assert_eq!(sa.insert(1, 11), Inserted::Updated(10));
        assert_eq!(sa.get(1), Some(&11));
        assert_eq!(sa.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut sa: SetAssoc<&str> = SetAssoc::new(1, 3);
        sa.insert(1, "a");
        sa.insert(2, "b");
        sa.insert(3, "c");
        // Touch 1 and 2; 3 becomes LRU.
        sa.get(1);
        sa.get(2);
        match sa.insert(4, "d") {
            Inserted::Evicted { tag, value } => {
                assert_eq!(tag, 3);
                assert_eq!(value, "c");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn peek_and_contains_do_not_refresh() {
        let mut sa: SetAssoc<u8> = SetAssoc::new(1, 2);
        sa.insert(1, 0);
        sa.insert(2, 0);
        // Peek at 1: must NOT refresh, so 1 is still LRU.
        assert!(sa.contains(1));
        assert_eq!(sa.peek(1), Some(&0));
        match sa.insert(3, 0) {
            Inserted::Evicted { tag, .. } => assert_eq!(tag, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keys_map_to_distinct_sets() {
        let mut sa: SetAssoc<u8> = SetAssoc::new(2, 1);
        sa.insert(0, 0); // set 0
        sa.insert(1, 1); // set 1
        assert_eq!(sa.len(), 2);
        // Key 2 maps to set 0 and evicts key 0 only.
        match sa.insert(2, 2) {
            Inserted::Evicted { tag, .. } => assert_eq!(tag, 0),
            other => panic!("{other:?}"),
        }
        assert!(sa.contains(1));
    }

    #[test]
    fn invalidate_removes() {
        let mut sa: SetAssoc<u8> = SetAssoc::new(4, 4);
        sa.insert(7, 70);
        assert_eq!(sa.invalidate(7), Some(70));
        assert_eq!(sa.invalidate(7), None);
        assert!(sa.is_empty());
    }

    #[test]
    fn invalidate_matching_and_flush() {
        let mut sa: SetAssoc<u8> = SetAssoc::new(4, 4);
        for k in 0..12 {
            sa.insert(k, (k % 3) as u8);
        }
        let removed = sa.invalidate_matching(|_, &v| v == 0);
        assert_eq!(removed, 4);
        assert_eq!(sa.len(), 8);
        assert_eq!(sa.flush(), 8);
        assert!(sa.is_empty());
    }

    #[test]
    fn would_evict_matches_actual_eviction() {
        let mut sa: SetAssoc<u8> = SetAssoc::new(1, 2);
        sa.insert(1, 0);
        assert_eq!(sa.would_evict(3), None, "set not yet full");
        sa.insert(2, 0);
        let predicted = sa.would_evict(3).unwrap();
        match sa.insert(3, 0) {
            Inserted::Evicted { tag, .. } => assert_eq!(tag, predicted),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn iter_visits_all() {
        let mut sa: SetAssoc<u8> = SetAssoc::new(8, 2);
        for k in 0..10 {
            sa.insert(k, k as u8);
        }
        let mut tags: Vec<u64> = sa.iter().map(|(t, _)| t).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn masked_set_selection_matches_modulo() {
        // Power-of-two set counts take the mask path; the selected set must
        // be the one `key % sets` picks, including for keys far above the
        // set count and at u64::MAX.
        for sets in [1usize, 2, 8, 32, 256] {
            let mut sa: SetAssoc<u64> = SetAssoc::new(sets, 1);
            for key in [0, 1, sets as u64 - 1, sets as u64, 12345, u64::MAX] {
                sa.insert(key, key);
                assert_eq!(sa.get(key).copied(), Some(key), "sets={sets} key={key}");
            }
        }
    }

    #[test]
    fn non_power_of_two_sets_still_work() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(3, 2);
        for key in 0..12u64 {
            sa.insert(key, key * 10);
        }
        // 3 sets × 2 ways: only the 2 most recent keys of each modulo-3
        // class survive.
        assert_eq!(sa.len(), 6);
        for key in 6..12u64 {
            assert_eq!(sa.get(key).copied(), Some(key * 10));
        }
    }
}
