//! Miss-status holding registers.
//!
//! An MSHR merges concurrent misses to the same block: the first miss
//! allocates an entry and proceeds down the hierarchy; later misses to the
//! same key attach themselves as waiters and are woken together when the fill
//! returns. The paper relies on this behaviour for correctness of the IRMB
//! bypass (§6.3): "before a new mapping is received, there won't be any
//! subsequent requests to the same page being sent to GMMU ... because the
//! original request resides in the L2 TLB MSHR".

use sim_engine::collections::DetHashMap;

/// Outcome of registering a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss for this key: the caller must issue the downstream request.
    Allocated,
    /// An entry for this key already exists: the request was queued behind it
    /// and the caller must NOT issue another downstream request.
    Merged,
    /// No free entries: structural stall; the caller must retry later.
    Full,
}

/// A table of miss-status holding registers keyed by `u64` (page number or
/// line address) holding opaque waiter tokens `W`.
///
/// # Example
///
/// ```
/// use mem_model::mshr::{Mshr, MshrOutcome};
/// let mut mshr: Mshr<u32> = Mshr::new(16);
/// assert_eq!(mshr.register(0x42, 1), MshrOutcome::Allocated);
/// assert_eq!(mshr.register(0x42, 2), MshrOutcome::Merged);
/// assert_eq!(mshr.complete(0x42), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<W> {
    entries: DetHashMap<u64, Vec<W>>,
    capacity: usize,
    merges: u64,
    stalls: u64,
    peak: usize,
}

impl<W> Mshr<W> {
    /// Creates a table with `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR needs at least one entry");
        Mshr {
            entries: DetHashMap::default(),
            capacity,
            merges: 0,
            stalls: 0,
            peak: 0,
        }
    }

    /// Registers a miss on `key` with waiter `w`.
    pub fn register(&mut self, key: u64, w: W) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&key) {
            waiters.push(w);
            self.merges += 1;
            return MshrOutcome::Merged;
        }
        if self.entries.len() == self.capacity {
            self.stalls += 1;
            return MshrOutcome::Full;
        }
        // simlint: allow(hot-path-alloc) — one-waiter list per MSHR entry allocation, bounded by MSHR capacity; merges push into the existing list
        self.entries.insert(key, vec![w]);
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Registers a miss on `key` ignoring the capacity limit. Used by fault
    /// paths that must never stall (a stalled fault can deadlock a
    /// migration); the overflow is architecturally backed by the GPU fault
    /// buffer rather than an MSHR entry.
    pub fn register_forced(&mut self, key: u64, w: W) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&key) {
            waiters.push(w);
            self.merges += 1;
            return MshrOutcome::Merged;
        }
        // simlint: allow(hot-path-alloc) — forced entries ride the fault buffer; one-waiter list per entry, freed when the miss completes
        self.entries.insert(key, vec![w]);
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Completes the miss on `key`, returning all waiters in registration
    /// order (empty if no entry existed).
    pub fn complete(&mut self, key: u64) -> Vec<W> {
        self.entries.remove(&key).unwrap_or_default()
    }

    /// Whether an entry for `key` is outstanding.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether all entries are allocated.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Total merged (secondary) misses.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total structural stalls.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Highest simultaneous occupancy.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_complete() {
        let mut m: Mshr<&str> = Mshr::new(4);
        assert_eq!(m.register(1, "a"), MshrOutcome::Allocated);
        assert_eq!(m.register(1, "b"), MshrOutcome::Merged);
        assert_eq!(m.register(2, "c"), MshrOutcome::Allocated);
        assert!(m.contains(1));
        assert_eq!(m.complete(1), vec!["a", "b"]);
        assert!(!m.contains(1));
        assert_eq!(m.complete(1), Vec::<&str>::new());
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn full_stalls_new_keys_but_merges_existing() {
        let mut m: Mshr<u8> = Mshr::new(1);
        assert_eq!(m.register(1, 0), MshrOutcome::Allocated);
        assert!(m.is_full());
        assert_eq!(m.register(2, 0), MshrOutcome::Full);
        // Same key still merges even when the table is full.
        assert_eq!(m.register(1, 1), MshrOutcome::Merged);
        assert_eq!(m.stalls(), 1);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut m: Mshr<u8> = Mshr::new(8);
        m.register(1, 0);
        m.register(2, 0);
        m.register(3, 0);
        m.complete(2);
        m.complete(3);
        assert_eq!(m.len(), 1);
        assert_eq!(m.peak(), 3);
    }
}
