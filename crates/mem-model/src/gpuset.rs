//! A small set of GPU ids, backed by a 64-bit mask.

use crate::interconnect::GpuId;

/// A set of up to 64 GPU ids.
///
/// Used for invalidation target lists: the baseline broadcasts to all GPUs,
/// the in-PTE directory narrows the set to (a superset of) the holders.
///
/// # Example
///
/// ```
/// use mem_model::gpuset::GpuSet;
/// let mut s = GpuSet::empty();
/// s.insert(0);
/// s.insert(3);
/// assert!(s.contains(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GpuSet(u64);

impl GpuSet {
    /// The empty set.
    pub const fn empty() -> GpuSet {
        GpuSet(0)
    }

    /// The set `{0, 1, …, n-1}` — a broadcast to `n` GPUs.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    pub fn all(n: usize) -> GpuSet {
        assert!(n <= 64, "at most 64 GPUs supported");
        if n == 64 {
            GpuSet(u64::MAX)
        } else {
            GpuSet((1u64 << n) - 1)
        }
    }

    /// A singleton set.
    pub fn single(g: GpuId) -> GpuSet {
        let mut s = GpuSet::empty();
        s.insert(g);
        s
    }

    /// Adds a GPU.
    ///
    /// # Panics
    /// Panics if `g >= 64`.
    pub fn insert(&mut self, g: GpuId) {
        assert!(g < 64, "gpu id out of range");
        self.0 |= 1u64 << g;
    }

    /// Removes a GPU; returns whether it was present.
    pub fn remove(&mut self, g: GpuId) -> bool {
        let was = self.contains(g);
        if g < 64 {
            self.0 &= !(1u64 << g);
        }
        was
    }

    /// Membership test.
    pub fn contains(&self, g: GpuId) -> bool {
        g < 64 && self.0 & (1u64 << g) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: GpuSet) -> GpuSet {
        GpuSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: GpuSet) -> GpuSet {
        GpuSet(self.0 & other.0)
    }

    /// Members of `self` not in `other`.
    pub fn difference(self, other: GpuSet) -> GpuSet {
        GpuSet(self.0 & !other.0)
    }

    /// Iterates over members in ascending order.
    pub fn iter(self) -> impl Iterator<Item = GpuId> {
        (0..64usize).filter(move |&g| self.contains(g))
    }

    /// The raw mask.
    pub fn mask(self) -> u64 {
        self.0
    }

    /// Builds a set from a raw mask.
    pub fn from_mask(mask: u64) -> GpuSet {
        GpuSet(mask)
    }
}

impl FromIterator<GpuId> for GpuSet {
    fn from_iter<I: IntoIterator<Item = GpuId>>(iter: I) -> GpuSet {
        let mut s = GpuSet::empty();
        for g in iter {
            s.insert(g);
        }
        s
    }
}

impl std::fmt::Display for GpuSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for g in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{g}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let mut s = GpuSet::empty();
        assert!(s.is_empty());
        s.insert(5);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn all_and_single() {
        let s = GpuSet::all(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(GpuSet::single(2).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(GpuSet::all(64).len(), 64);
    }

    #[test]
    fn set_algebra() {
        let a: GpuSet = [0usize, 1, 2].into_iter().collect();
        let b: GpuSet = [2usize, 3].into_iter().collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersect(b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.difference(b).iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn display_formats() {
        let s: GpuSet = [1usize, 3].into_iter().collect();
        assert_eq!(s.to_string(), "{1,3}");
        assert_eq!(GpuSet::empty().to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_id_panics() {
        let mut s = GpuSet::empty();
        s.insert(64);
    }
}
