//! Banked DRAM latency/bandwidth model.
//!
//! Device memory (4 GB per GPU in Table 2) is modelled as a fixed access
//! latency plus per-bank serialisation: concurrent accesses to the same bank
//! queue behind each other, giving the bandwidth cliff that makes remote
//! versus local access asymmetry matter.

use sim_engine::{stats::Counter, Cycle};

/// A banked DRAM device.
///
/// # Example
///
/// ```
/// use mem_model::dram::Dram;
/// use sim_engine::Cycle;
/// let mut d = Dram::new(8, Cycle(200), 32);
/// let done = d.access(Cycle(0), 0x1000);
/// assert_eq!(done, Cycle(200));
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    bank_free: Vec<Cycle>,
    latency: Cycle,
    bank_occupancy: u64,
    line_bytes: u64,
    accesses: Counter,
    queued: Counter,
}

impl Dram {
    /// Creates a DRAM with `banks` banks, fixed `latency`, and per-access
    /// bank occupancy of `occupancy` cycles (defaults to `latency / 4`
    /// when zero is passed would be meaningless, so it must be positive).
    pub fn new(banks: usize, latency: Cycle, occupancy: u64) -> Self {
        assert!(banks > 0, "need at least one bank");
        assert!(occupancy > 0, "bank occupancy must be positive");
        Dram {
            bank_free: vec![Cycle::ZERO; banks],
            latency,
            bank_occupancy: occupancy,
            line_bytes: 64,
            accesses: Counter::new(),
            queued: Counter::new(),
        }
    }

    #[inline]
    fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.bank_free.len() as u64) as usize
    }

    /// Issues an access to byte address `addr` at time `now`; returns its
    /// completion time.
    pub fn access(&mut self, now: Cycle, addr: u64) -> Cycle {
        self.accesses.inc();
        let bank = self.bank_of(addr);
        let start = self.bank_free[bank].max(now);
        if start > now {
            self.queued.inc();
        }
        self.bank_free[bank] = start + self.bank_occupancy;
        start + self.latency
    }

    /// Fixed access latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Accesses that had to queue behind a busy bank.
    pub fn queued(&self) -> u64 {
        self.queued.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_access_takes_latency() {
        let mut d = Dram::new(4, Cycle(200), 40);
        assert_eq!(d.access(Cycle(10), 0), Cycle(210));
        assert_eq!(d.accesses(), 1);
        assert_eq!(d.queued(), 0);
    }

    #[test]
    fn same_bank_serialises() {
        let mut d = Dram::new(4, Cycle(200), 40);
        // Bank stride is 64B * 4 banks = 256; same bank: 0 and 256.
        let t1 = d.access(Cycle(0), 0);
        let t2 = d.access(Cycle(0), 256);
        assert_eq!(t1, Cycle(200));
        assert_eq!(t2, Cycle(240), "second access starts after occupancy");
        assert_eq!(d.queued(), 1);
    }

    #[test]
    fn different_banks_parallel() {
        let mut d = Dram::new(4, Cycle(200), 40);
        let t1 = d.access(Cycle(0), 0);
        let t2 = d.access(Cycle(0), 64);
        assert_eq!(t1, t2);
        assert_eq!(d.queued(), 0);
    }
}
