//! Property-based tests of the memory-side substrates.

use std::collections::{HashMap, HashSet};

use mem_model::assoc::{Inserted, SetAssoc};
use mem_model::gpuset::GpuSet;
use mem_model::mshr::{Mshr, MshrOutcome};
use proptest::prelude::*;

proptest! {
    #[test]
    fn set_assoc_agrees_with_map_model(
        sets in 1usize..8,
        ways in 1usize..8,
        ops in prop::collection::vec((0u64..64, 0u32..1000), 1..300),
    ) {
        let mut sa: SetAssoc<u32> = SetAssoc::new(sets, ways);
        let mut model: HashMap<u64, u32> = HashMap::new();
        for (key, value) in ops {
            match sa.insert(key, value) {
                Inserted::Updated(old) => {
                    prop_assert_eq!(model.insert(key, value), Some(old));
                }
                Inserted::Filled => {
                    prop_assert_eq!(model.insert(key, value), None);
                }
                Inserted::Evicted { tag, value: evicted } => {
                    prop_assert_eq!(model.remove(&tag), Some(evicted));
                    prop_assert_eq!(model.insert(key, value), None);
                    // Victims share the set with the newcomer.
                    prop_assert_eq!(tag % sets as u64, key % sets as u64);
                }
            }
            prop_assert!(sa.len() <= sets * ways);
            prop_assert_eq!(sa.len(), model.len());
        }
        for (key, value) in &model {
            prop_assert_eq!(sa.peek(*key), Some(value));
        }
    }

    #[test]
    fn mshr_conserves_waiters(
        capacity in 1usize..8,
        ops in prop::collection::vec((0u64..16, prop::bool::ANY), 1..200),
    ) {
        let mut mshr: Mshr<u64> = Mshr::new(capacity);
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut next_token = 0u64;
        for (key, complete) in ops {
            if complete {
                prop_assert_eq!(mshr.complete(key), model.remove(&key).unwrap_or_default());
            } else {
                let token = next_token;
                next_token += 1;
                match mshr.register(key, token) {
                    MshrOutcome::Allocated => {
                        prop_assert!(!model.contains_key(&key));
                        prop_assert!(model.len() < capacity);
                        model.insert(key, vec![token]);
                    }
                    MshrOutcome::Merged => {
                        model.get_mut(&key).expect("merge implies entry").push(token);
                    }
                    MshrOutcome::Full => {
                        prop_assert_eq!(model.len(), capacity);
                        prop_assert!(!model.contains_key(&key));
                    }
                }
            }
            prop_assert_eq!(mshr.len(), model.len());
        }
    }

    #[test]
    fn gpuset_behaves_like_hash_set(
        ops in prop::collection::vec((0usize..64, prop::bool::ANY), 1..200),
    ) {
        let mut set = GpuSet::empty();
        let mut model: HashSet<usize> = HashSet::new();
        for (g, insert) in ops {
            if insert {
                set.insert(g);
                model.insert(g);
            } else {
                prop_assert_eq!(set.remove(g), model.remove(&g));
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
        }
        let mut members: Vec<usize> = model.into_iter().collect();
        members.sort_unstable();
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), members);
    }

    #[test]
    fn gpuset_algebra_laws(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let sa = GpuSet::from_mask(a);
        let sb = GpuSet::from_mask(b);
        prop_assert_eq!(sa.union(sb).mask(), a | b);
        prop_assert_eq!(sa.intersect(sb).mask(), a & b);
        prop_assert_eq!(sa.difference(sb).mask(), a & !b);
        prop_assert_eq!(sa.union(sb).len(), sb.union(sa).len());
        prop_assert!(sa.intersect(sb).len() <= sa.len().min(sb.len()));
    }
}
