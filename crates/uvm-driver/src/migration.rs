//! In-flight page-migration bookkeeping.
//!
//! A counter-triggered migration proceeds in phases (§3.3):
//!
//! 1. the requesting GPU sends a migration request to the driver;
//! 2. the driver issues PTE invalidations (broadcast in the baseline,
//!    directory-directed under IDYLL) and walks its own table;
//! 3. every targeted GPU acknowledges its shootdown/invalidation, and the
//!    host walk completes — the interval from (1) to the end of (3) is the
//!    paper's *page-migration waiting latency* (Figure 7/14);
//! 4. the page data moves and the new mapping is established.
//!
//! Far faults that arrive for a migrating page park here and are replayed
//! when the migration completes.

use mem_model::gpuset::GpuSet;
use mem_model::interconnect::{GpuId, Node};
use sim_engine::collections::DetHashMap;
use sim_engine::Cycle;
use vm_model::addr::Vpn;

use crate::fault::FarFault;

/// Phase of an in-flight migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Waiting for invalidation acks and/or the host page-table walk.
    Invalidating,
    /// Invalidation complete; page data in flight.
    Transferring,
}

/// One in-flight migration.
#[derive(Debug, Clone)]
pub struct Migration {
    /// Unique id.
    pub id: u64,
    /// The migrating page.
    pub vpn: Vpn,
    /// Source device.
    pub from: Node,
    /// Destination GPU.
    pub to: GpuId,
    /// When the driver received the request.
    pub requested_at: Cycle,
    /// Current phase.
    pub phase: MigrationPhase,
    /// GPUs that still owe an invalidation ack.
    pub pending_acks: GpuSet,
    /// GPUs the invalidation was sent to (for statistics).
    pub targets: GpuSet,
    /// Whether the driver's own page-table walk has finished.
    pub host_walk_done: bool,
    /// When the invalidation phase finished (acks + host walk).
    pub invalidation_done_at: Option<Cycle>,
    /// Far faults parked on this page, replayed at completion.
    pub waiters: Vec<FarFault>,
}

impl Migration {
    /// Whether invalidation is fully complete (all acks + host walk).
    pub fn invalidation_complete(&self) -> bool {
        self.pending_acks.is_empty() && self.host_walk_done
    }

    /// The waiting latency accrued so far / in total (Figure 7's metric).
    pub fn waiting_latency(&self) -> Option<Cycle> {
        self.invalidation_done_at
            .map(|t| t.saturating_sub(self.requested_at))
    }
}

/// Table of in-flight migrations, keyed by page.
///
/// At most one migration per page can be in flight; a second request for the
/// same page while one is active is dropped (the requester's counters have
/// been reset anyway).
#[derive(Debug, Clone, Default)]
pub struct MigrationTable {
    active: DetHashMap<Vpn, Migration>,
    next_id: u64,
    started: u64,
    dropped_duplicates: u64,
}

impl MigrationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MigrationTable::default()
    }

    /// Starts tracking a migration of `vpn` from `from` to `to`. Returns
    /// `None` (and counts a duplicate) when one is already in flight.
    pub fn start(
        &mut self,
        vpn: Vpn,
        from: Node,
        to: GpuId,
        targets: GpuSet,
        requested_at: Cycle,
    ) -> Option<&mut Migration> {
        if self.active.contains_key(&vpn) {
            self.dropped_duplicates += 1;
            return None;
        }
        self.next_id += 1;
        self.started += 1;
        let id = self.next_id;
        self.active.insert(
            vpn,
            Migration {
                id,
                vpn,
                from,
                to,
                requested_at,
                phase: MigrationPhase::Invalidating,
                pending_acks: targets,
                targets,
                host_walk_done: false,
                invalidation_done_at: None,
                waiters: Vec::new(),
            },
        );
        self.active.get_mut(&vpn)
    }

    /// Whether `vpn` is currently migrating.
    pub fn is_migrating(&self, vpn: Vpn) -> bool {
        self.active.contains_key(&vpn)
    }

    /// Immutable access to an in-flight migration.
    pub fn get(&self, vpn: Vpn) -> Option<&Migration> {
        self.active.get(&vpn)
    }

    /// Mutable access to an in-flight migration.
    pub fn get_mut(&mut self, vpn: Vpn) -> Option<&mut Migration> {
        self.active.get_mut(&vpn)
    }

    /// Records an invalidation ack from `gpu`; returns `true` when that
    /// completed the invalidation phase (all acks in *and* host walk done).
    pub fn ack(&mut self, vpn: Vpn, gpu: GpuId, now: Cycle) -> bool {
        let Some(m) = self.active.get_mut(&vpn) else {
            return false;
        };
        m.pending_acks.remove(gpu);
        Self::maybe_finish_invalidation(m, now)
    }

    /// Records completion of the host-side walk; returns `true` when that
    /// completed the invalidation phase.
    pub fn host_walk_done(&mut self, vpn: Vpn, now: Cycle) -> bool {
        let Some(m) = self.active.get_mut(&vpn) else {
            return false;
        };
        m.host_walk_done = true;
        Self::maybe_finish_invalidation(m, now)
    }

    fn maybe_finish_invalidation(m: &mut Migration, now: Cycle) -> bool {
        if m.phase == MigrationPhase::Invalidating && m.invalidation_complete() {
            m.phase = MigrationPhase::Transferring;
            m.invalidation_done_at = Some(now);
            true
        } else {
            false
        }
    }

    /// Parks a far fault on a migrating page.
    ///
    /// # Panics
    /// Panics if no migration is in flight for the fault's page.
    pub fn park_waiter(&mut self, fault: FarFault) {
        self.active
            .get_mut(&fault.vpn)
            // simlint: allow(hot-path-panic) — documented `# Panics` contract: callers check is_migrating before parking
            .expect("parking on a non-migrating page")
            .waiters
            .push(fault);
    }

    /// Completes and removes the migration, returning its record (with
    /// parked waiters) for replay.
    pub fn complete(&mut self, vpn: Vpn) -> Option<Migration> {
        self.active.remove(&vpn)
    }

    /// Number of in-flight migrations.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Migrations ever started.
    pub fn started(&self) -> u64 {
        self.started
    }

    /// Duplicate requests dropped.
    pub fn dropped_duplicates(&self) -> u64 {
        self.dropped_duplicates
    }

    /// Iterates over in-flight migrations, in unspecified order. Callers
    /// must not let visit order reach simulation state or exports (the only
    /// caller aggregates order-insensitively for debug dumps).
    pub fn iter(&self) -> impl Iterator<Item = &Migration> {
        // simlint: allow(unordered-iter) — debug/aggregate-only; order never escapes
        self.active.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(table: &mut MigrationTable) -> &mut Migration {
        table
            .start(
                Vpn(7),
                Node::Gpu(1),
                0,
                GpuSet::from_mask(0b0110),
                Cycle(100),
            )
            .unwrap()
    }

    #[test]
    fn lifecycle_acks_then_host_walk() {
        let mut t = MigrationTable::new();
        start(&mut t);
        assert!(t.is_migrating(Vpn(7)));
        assert!(!t.ack(Vpn(7), 1, Cycle(150)));
        assert!(!t.ack(Vpn(7), 2, Cycle(180)), "host walk still pending");
        assert!(t.host_walk_done(Vpn(7), Cycle(200)));
        let m = t.get(Vpn(7)).unwrap();
        assert_eq!(m.phase, MigrationPhase::Transferring);
        assert_eq!(m.waiting_latency(), Some(Cycle(100)));
        let done = t.complete(Vpn(7)).unwrap();
        assert_eq!(done.id, 1);
        assert!(!t.is_migrating(Vpn(7)));
    }

    #[test]
    fn host_walk_first_then_acks() {
        let mut t = MigrationTable::new();
        start(&mut t);
        assert!(!t.host_walk_done(Vpn(7), Cycle(120)));
        assert!(!t.ack(Vpn(7), 1, Cycle(150)));
        assert!(t.ack(Vpn(7), 2, Cycle(170)));
        assert_eq!(
            t.get(Vpn(7)).unwrap().invalidation_done_at,
            Some(Cycle(170))
        );
    }

    #[test]
    fn empty_target_set_completes_on_host_walk_alone() {
        // The in-PTE directory can determine no GPU holds the translation.
        let mut t = MigrationTable::new();
        t.start(Vpn(1), Node::Gpu(0), 1, GpuSet::empty(), Cycle(0))
            .unwrap();
        assert!(t.host_walk_done(Vpn(1), Cycle(50)));
    }

    #[test]
    fn duplicate_requests_dropped() {
        let mut t = MigrationTable::new();
        start(&mut t);
        assert!(t
            .start(Vpn(7), Node::Gpu(2), 3, GpuSet::all(4), Cycle(300))
            .is_none());
        assert_eq!(t.dropped_duplicates(), 1);
        assert_eq!(t.started(), 1);
        // The original migration is unchanged.
        assert_eq!(t.get(Vpn(7)).unwrap().to, 0);
    }

    #[test]
    fn waiters_ride_along() {
        let mut t = MigrationTable::new();
        start(&mut t);
        t.park_waiter(FarFault {
            gpu: 3,
            vpn: Vpn(7),
            is_write: false,
            raised_at: Cycle(110),
            token: 42,
        });
        let m = t.complete(Vpn(7)).unwrap();
        assert_eq!(m.waiters.len(), 1);
        assert_eq!(m.waiters[0].token, 42);
    }

    #[test]
    fn ack_on_unknown_page_is_ignored() {
        let mut t = MigrationTable::new();
        assert!(!t.ack(Vpn(1), 0, Cycle(0)));
        assert!(!t.host_walk_done(Vpn(1), Cycle(0)));
        assert!(t.complete(Vpn(1)).is_none());
    }
}
