//! Page replication (§7.4 comparison policy).
//!
//! Replication lets read-shared pages be duplicated across GPUs so reads
//! never cross the interconnect. Writes, however, must collapse all replicas
//! back to a single owner, invalidating every other copy — which is why the
//! paper finds replication loses to IDYLL on write-intensive applications
//! (IM, C2D) while being competitive on read-heavy ones (PR, ST, SC).

use mem_model::gpuset::GpuSet;
use mem_model::interconnect::GpuId;
use sim_engine::collections::DetHashMap;
use vm_model::addr::Vpn;

/// Tracks which GPUs hold (read-only) replicas of each page, including the
/// page's writable owner if it has one.
///
/// # Example
///
/// ```
/// use uvm_driver::replication::ReplicaDirectory;
/// use vm_model::Vpn;
///
/// let mut rd = ReplicaDirectory::new();
/// rd.add_replica(Vpn(1), 0);
/// rd.add_replica(Vpn(1), 2);
/// // A write by GPU 2 must invalidate the copy on GPU 0.
/// let invalidate = rd.collapse_for_write(Vpn(1), 2);
/// assert_eq!(invalidate.iter().collect::<Vec<_>>(), vec![0]);
/// assert_eq!(rd.holders(Vpn(1)).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplicaDirectory {
    replicas: DetHashMap<Vpn, GpuSet>,
    replications: u64,
    collapses: u64,
}

impl ReplicaDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        ReplicaDirectory::default()
    }

    /// Records that `gpu` received a replica of `vpn`. Returns the number of
    /// holders afterwards.
    pub fn add_replica(&mut self, vpn: Vpn, gpu: GpuId) -> usize {
        let set = self.replicas.entry(vpn).or_insert_with(GpuSet::empty);
        if !set.contains(gpu) {
            self.replications += 1;
        }
        set.insert(gpu);
        set.len()
    }

    /// GPUs currently holding a copy.
    pub fn holders(&self, vpn: Vpn) -> GpuSet {
        self.replicas
            .get(&vpn)
            .copied()
            .unwrap_or_else(GpuSet::empty)
    }

    /// Whether `gpu` holds a copy.
    pub fn holds(&self, vpn: Vpn, gpu: GpuId) -> bool {
        self.holders(vpn).contains(gpu)
    }

    /// A write by `writer` collapses all replicas to the writer: returns the
    /// set of *other* GPUs whose copies (PTEs and pages) must be
    /// invalidated. The writer becomes the sole holder.
    pub fn collapse_for_write(&mut self, vpn: Vpn, writer: GpuId) -> GpuSet {
        let holders = self.holders(vpn);
        let to_invalidate = holders.difference(GpuSet::single(writer));
        if !to_invalidate.is_empty() {
            self.collapses += 1;
        }
        self.replicas.insert(vpn, GpuSet::single(writer));
        to_invalidate
    }

    /// Drops all replica tracking for a page (page freed / migrated away).
    pub fn forget(&mut self, vpn: Vpn) -> GpuSet {
        self.replicas.remove(&vpn).unwrap_or_else(GpuSet::empty)
    }

    /// Total replicas ever granted.
    pub fn replications(&self) -> u64 {
        self.replications
    }

    /// Total write collapses.
    pub fn collapses(&self) -> u64 {
        self.collapses
    }

    /// Pages with at least one tracked holder.
    pub fn tracked_pages(&self) -> usize {
        self.replicas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_accumulate() {
        let mut rd = ReplicaDirectory::new();
        assert_eq!(rd.add_replica(Vpn(1), 0), 1);
        assert_eq!(rd.add_replica(Vpn(1), 1), 2);
        assert_eq!(rd.add_replica(Vpn(1), 1), 2, "idempotent");
        assert_eq!(rd.replications(), 2);
        assert!(rd.holds(Vpn(1), 0));
        assert!(!rd.holds(Vpn(1), 3));
    }

    #[test]
    fn write_collapse_invalidates_others_only() {
        let mut rd = ReplicaDirectory::new();
        rd.add_replica(Vpn(1), 0);
        rd.add_replica(Vpn(1), 1);
        rd.add_replica(Vpn(1), 2);
        let inv = rd.collapse_for_write(Vpn(1), 1);
        assert_eq!(inv.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(rd.holders(Vpn(1)).iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(rd.collapses(), 1);
    }

    #[test]
    fn write_by_sole_holder_invalidates_nothing() {
        let mut rd = ReplicaDirectory::new();
        rd.add_replica(Vpn(1), 2);
        let inv = rd.collapse_for_write(Vpn(1), 2);
        assert!(inv.is_empty());
        assert_eq!(rd.collapses(), 0);
    }

    #[test]
    fn write_by_non_holder_takes_ownership() {
        let mut rd = ReplicaDirectory::new();
        rd.add_replica(Vpn(1), 0);
        let inv = rd.collapse_for_write(Vpn(1), 3);
        assert_eq!(inv.iter().collect::<Vec<_>>(), vec![0]);
        assert!(rd.holds(Vpn(1), 3));
    }

    #[test]
    fn forget_clears() {
        let mut rd = ReplicaDirectory::new();
        rd.add_replica(Vpn(1), 0);
        let dropped = rd.forget(Vpn(1));
        assert_eq!(dropped.len(), 1);
        assert!(rd.holders(Vpn(1)).is_empty());
        assert_eq!(rd.tracked_pages(), 0);
    }
}
