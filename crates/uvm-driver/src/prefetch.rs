//! Fault-driven prefetching, modelled after the NVIDIA UVM driver's
//! tree-based density prefetcher.
//!
//! The open-source UVM driver groups the virtual address space into 64 KiB
//! prefetch blocks (16 pages at 4 KiB) and, when resolving a fault, migrates
//! the *remaining host-resident pages of the block* along with the faulting
//! page once the block's touch density crosses a threshold. This is an
//! optional extension (off in the paper's baseline — MGPUSim does not model
//! it) exposed for the ablation harness: prefetching shifts work from many
//! small migrations to fewer larger ones, which changes the invalidation
//! traffic IDYLL targets.

use mem_model::interconnect::GpuId;
use sim_engine::collections::DetHashMap;
use vm_model::addr::Vpn;

/// Pages per prefetch block (64 KiB at 4 KiB pages).
pub const BLOCK_PAGES: u64 = 16;

/// Prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchConfig {
    /// Fraction of a block that must have faulted (by the same GPU) before
    /// the rest of the block is pulled along (the driver's density check).
    pub density_threshold: f64,
    /// Maximum pages prefetched per fault.
    pub max_per_fault: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            density_threshold: 0.5,
            max_per_fault: BLOCK_PAGES as usize,
        }
    }
}

/// The per-GPU fault-density tracker.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    cfg: PrefetchConfig,
    /// (gpu, block) → bitmap of faulted pages within the block.
    touched: DetHashMap<(GpuId, u64), u16>,
    suggestions: u64,
}

impl Prefetcher {
    /// Creates a prefetcher.
    pub fn new(cfg: PrefetchConfig) -> Self {
        Prefetcher {
            cfg,
            touched: DetHashMap::default(),
            suggestions: 0,
        }
    }

    #[inline]
    fn block_of(vpn: Vpn) -> u64 {
        vpn.0 / BLOCK_PAGES
    }

    /// Records a fault by `gpu` on `vpn` and returns the sibling pages the
    /// driver should migrate along with it (possibly empty). The caller is
    /// responsible for filtering to pages that are actually host-resident
    /// or remote.
    pub fn on_fault(&mut self, gpu: GpuId, vpn: Vpn) -> Vec<Vpn> {
        let block = Self::block_of(vpn);
        let bit = 1u16 << (vpn.0 % BLOCK_PAGES);
        let map = self.touched.entry((gpu, block)).or_insert(0);
        *map |= bit;
        let density = map.count_ones() as f64 / BLOCK_PAGES as f64;
        if density < self.cfg.density_threshold {
            return Vec::new();
        }
        // Dense block: suggest the untouched remainder.
        let mut out = Vec::new();
        for i in 0..BLOCK_PAGES {
            let candidate = Vpn(block * BLOCK_PAGES + i);
            if *map & (1 << i) == 0 && out.len() < self.cfg.max_per_fault {
                out.push(candidate);
            }
        }
        if !out.is_empty() {
            self.suggestions += out.len() as u64;
            // The whole block is now considered resident for this GPU.
            *map = u16::MAX;
        }
        out
    }

    /// Forgets a block's density when its pages migrate away from `gpu`.
    pub fn on_eviction(&mut self, gpu: GpuId, vpn: Vpn) {
        self.touched.remove(&(gpu, Self::block_of(vpn)));
    }

    /// Total pages ever suggested.
    pub fn suggestions(&self) -> u64 {
        self.suggestions
    }

    /// Live tracked blocks (diagnostic).
    pub fn tracked_blocks(&self) -> usize {
        self.touched.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_faults_suggest_nothing() {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        assert!(p.on_fault(0, Vpn(0)).is_empty());
        assert!(p.on_fault(0, Vpn(4)).is_empty());
        assert_eq!(p.suggestions(), 0);
    }

    #[test]
    fn dense_block_suggests_remainder() {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        // Fault 8 of 16 pages (density 0.5) in block 0.
        let mut suggested = Vec::new();
        for i in 0..8 {
            suggested = p.on_fault(0, Vpn(i));
        }
        assert_eq!(suggested.len(), 8, "the untouched half is suggested");
        for v in &suggested {
            assert!(v.0 >= 8 && v.0 < 16);
        }
        // The block is now saturated: further faults suggest nothing.
        assert!(p.on_fault(0, Vpn(9)).is_empty());
    }

    #[test]
    fn blocks_and_gpus_are_independent() {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        for i in 0..7 {
            p.on_fault(0, Vpn(i));
        }
        // GPU 1 faulting in the same block does not inherit GPU 0's density.
        assert!(p.on_fault(1, Vpn(7)).is_empty());
        // A different block is independent too.
        assert!(p.on_fault(0, Vpn(BLOCK_PAGES)).is_empty());
    }

    #[test]
    fn max_per_fault_caps_suggestions() {
        let mut p = Prefetcher::new(PrefetchConfig {
            density_threshold: 0.25,
            max_per_fault: 3,
        });
        let mut suggested = Vec::new();
        for i in 0..4 {
            suggested = p.on_fault(0, Vpn(i));
        }
        assert_eq!(suggested.len(), 3);
    }

    #[test]
    fn eviction_resets_density() {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        for i in 0..7 {
            p.on_fault(0, Vpn(i));
        }
        p.on_eviction(0, Vpn(3));
        assert_eq!(p.tracked_blocks(), 0);
        // Density starts over.
        assert!(p.on_fault(0, Vpn(7)).is_empty());
    }
}
