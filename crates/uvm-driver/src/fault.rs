//! Far faults and the driver's fault batcher.
//!
//! GPUs report far faults through their fault buffers; the UVM driver
//! "fetches the fault information, groups faults into batches, and caches it
//! on the host (the batch size is 256)" (§3.2). The batcher here is pure
//! mechanism: the system layer decides *when* to flush a partial batch
//! (a configurable batching window models the driver's periodic service).

use mem_model::interconnect::GpuId;
use sim_engine::Cycle;
use vm_model::addr::Vpn;

/// One far fault reported by a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarFault {
    /// Reporting GPU.
    pub gpu: GpuId,
    /// Faulting page.
    pub vpn: Vpn,
    /// Whether the faulting access was a write.
    pub is_write: bool,
    /// When the fault left the GPU.
    pub raised_at: Cycle,
    /// Opaque request token used by the system layer to resume the
    /// originating translation request.
    pub token: u64,
}

/// Groups incoming faults into batches of at most `batch_size`.
///
/// # Example
///
/// ```
/// use uvm_driver::fault::{FarFault, FaultBatcher};
/// use sim_engine::Cycle;
/// use vm_model::Vpn;
///
/// let mut b = FaultBatcher::new(2);
/// let f = |t| FarFault { gpu: 0, vpn: Vpn(t), is_write: false, raised_at: Cycle(0), token: t };
/// assert!(b.push(f(1)).is_none());
/// let batch = b.push(f(2)).unwrap(); // batch full
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FaultBatcher {
    pending: Vec<FarFault>,
    batch_size: usize,
    batches_emitted: u64,
    faults_total: u64,
}

impl FaultBatcher {
    /// Creates a batcher with the given maximum batch size (256 in the
    /// NVIDIA driver).
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0);
        FaultBatcher {
            pending: Vec::with_capacity(batch_size),
            batch_size,
            batches_emitted: 0,
            faults_total: 0,
        }
    }

    /// Adds a fault; returns a full batch when `batch_size` is reached.
    pub fn push(&mut self, fault: FarFault) -> Option<Vec<FarFault>> {
        self.faults_total += 1;
        self.pending.push(fault);
        if self.pending.len() >= self.batch_size {
            self.batches_emitted += 1;
            Some(std::mem::take(&mut self.pending))
        } else {
            None
        }
    }

    /// Flushes whatever is pending (the batching-window timeout path).
    /// Returns `None` when nothing is pending.
    pub fn flush(&mut self) -> Option<Vec<FarFault>> {
        if self.pending.is_empty() {
            None
        } else {
            self.batches_emitted += 1;
            Some(std::mem::take(&mut self.pending))
        }
    }

    /// Pending fault count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Maximum batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Batches emitted so far.
    pub fn batches_emitted(&self) -> u64 {
        self.batches_emitted
    }

    /// Faults ever received.
    pub fn faults_total(&self) -> u64 {
        self.faults_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(token: u64) -> FarFault {
        FarFault {
            gpu: (token % 4) as GpuId,
            vpn: Vpn(token * 7),
            is_write: token.is_multiple_of(2),
            raised_at: Cycle(token),
            token,
        }
    }

    #[test]
    fn batch_emitted_exactly_at_capacity() {
        let mut b = FaultBatcher::new(3);
        assert!(b.push(fault(1)).is_none());
        assert!(b.push(fault(2)).is_none());
        let batch = b.push(fault(3)).unwrap();
        assert_eq!(batch.len(), 3);
        assert!(b.is_empty());
        assert_eq!(b.batches_emitted(), 1);
        assert_eq!(b.faults_total(), 3);
    }

    #[test]
    fn batch_preserves_arrival_order() {
        let mut b = FaultBatcher::new(3);
        b.push(fault(10));
        b.push(fault(20));
        let batch = b.push(fault(30)).unwrap();
        let tokens: Vec<u64> = batch.iter().map(|f| f.token).collect();
        assert_eq!(tokens, vec![10, 20, 30]);
    }

    #[test]
    fn flush_emits_partial_batch() {
        let mut b = FaultBatcher::new(100);
        assert!(b.flush().is_none());
        b.push(fault(1));
        b.push(fault(2));
        let batch = b.flush().unwrap();
        assert_eq!(batch.len(), 2);
        assert!(b.flush().is_none());
    }

    #[test]
    fn continues_after_emission() {
        let mut b = FaultBatcher::new(2);
        b.push(fault(1));
        b.push(fault(2));
        assert!(b.push(fault(3)).is_none());
        assert_eq!(b.len(), 1);
    }
}
