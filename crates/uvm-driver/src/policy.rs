//! Page-migration policies and access counters (§3.3).

use mem_model::interconnect::GpuId;
use sim_engine::collections::DetHashMap;
use vm_model::addr::Vpn;

/// The GPU-to-GPU page-migration policy.
///
/// All policies migrate a page from the CPU to a GPU on first GPU touch;
/// they differ in how they treat subsequent *remote* (GPU-to-GPU) accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// Pin the page to the first GPU that touched it; remote accesses stay
    /// remote forever.
    FirstTouch,
    /// Migrate on every remote access ("ping-pong" prone).
    OnTouch,
    /// NVIDIA Volta+-style: migrate when a GPU's access counter for the page
    /// reaches `threshold` (256 in the open-source UVM driver default).
    AccessCounter {
        /// Remote accesses required before migration.
        threshold: u32,
    },
}

impl MigrationPolicy {
    /// The paper's baseline: access counters with threshold 256.
    pub fn baseline() -> Self {
        MigrationPolicy::AccessCounter { threshold: 256 }
    }
}

impl std::fmt::Display for MigrationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationPolicy::FirstTouch => write!(f, "first-touch"),
            MigrationPolicy::OnTouch => write!(f, "on-touch"),
            MigrationPolicy::AccessCounter { threshold } => {
                write!(f, "access-counter({threshold})")
            }
        }
    }
}

/// Per-(GPU, page) remote-access counters.
///
/// # Example
///
/// ```
/// use uvm_driver::policy::{AccessCounters, MigrationPolicy};
/// use vm_model::Vpn;
///
/// let policy = MigrationPolicy::AccessCounter { threshold: 2 };
/// let mut counters = AccessCounters::new();
/// assert!(!counters.record_remote_access(policy, 0, Vpn(7)));
/// assert!(counters.record_remote_access(policy, 0, Vpn(7))); // threshold hit
/// ```
#[derive(Debug, Clone, Default)]
pub struct AccessCounters {
    counts: DetHashMap<(GpuId, Vpn), u32>,
    triggers: u64,
}

impl AccessCounters {
    /// Creates an empty counter table.
    pub fn new() -> Self {
        AccessCounters::default()
    }

    /// Records one remote access by `gpu` to `vpn` under `policy`; returns
    /// whether the policy asks for a migration of `vpn` to `gpu`.
    pub fn record_remote_access(&mut self, policy: MigrationPolicy, gpu: GpuId, vpn: Vpn) -> bool {
        match policy {
            MigrationPolicy::FirstTouch => false,
            MigrationPolicy::OnTouch => {
                self.triggers += 1;
                true
            }
            MigrationPolicy::AccessCounter { threshold } => {
                let c = self.counts.entry((gpu, vpn)).or_insert(0);
                *c += 1;
                if *c >= threshold {
                    *c = 0;
                    self.triggers += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Current counter value (0 when never counted).
    pub fn count(&self, gpu: GpuId, vpn: Vpn) -> u32 {
        self.counts.get(&(gpu, vpn)).copied().unwrap_or(0)
    }

    /// Clears every GPU's counter for `vpn` — done when the page migrates,
    /// so counting restarts against the new placement.
    pub fn reset_page(&mut self, vpn: Vpn) {
        self.counts.retain(|&(_, v), _| v != vpn);
    }

    /// Total migration triggers raised.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Number of live counters (diagnostic).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no counters are live.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_never_migrates() {
        let mut c = AccessCounters::new();
        for _ in 0..1000 {
            assert!(!c.record_remote_access(MigrationPolicy::FirstTouch, 0, Vpn(1)));
        }
        assert_eq!(c.triggers(), 0);
    }

    #[test]
    fn on_touch_always_migrates() {
        let mut c = AccessCounters::new();
        assert!(c.record_remote_access(MigrationPolicy::OnTouch, 0, Vpn(1)));
        assert!(c.record_remote_access(MigrationPolicy::OnTouch, 1, Vpn(1)));
        assert_eq!(c.triggers(), 2);
    }

    #[test]
    fn counter_threshold_and_reset_on_trigger() {
        let p = MigrationPolicy::AccessCounter { threshold: 3 };
        let mut c = AccessCounters::new();
        assert!(!c.record_remote_access(p, 0, Vpn(1)));
        assert!(!c.record_remote_access(p, 0, Vpn(1)));
        assert!(c.record_remote_access(p, 0, Vpn(1)));
        // Counter auto-resets after triggering.
        assert_eq!(c.count(0, Vpn(1)), 0);
        assert!(!c.record_remote_access(p, 0, Vpn(1)));
    }

    #[test]
    fn counters_are_per_gpu_and_per_page() {
        let p = MigrationPolicy::AccessCounter { threshold: 2 };
        let mut c = AccessCounters::new();
        c.record_remote_access(p, 0, Vpn(1));
        c.record_remote_access(p, 1, Vpn(1));
        c.record_remote_access(p, 0, Vpn(2));
        assert_eq!(c.count(0, Vpn(1)), 1);
        assert_eq!(c.count(1, Vpn(1)), 1);
        assert_eq!(c.count(0, Vpn(2)), 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reset_page_clears_all_gpus() {
        let p = MigrationPolicy::AccessCounter { threshold: 10 };
        let mut c = AccessCounters::new();
        c.record_remote_access(p, 0, Vpn(1));
        c.record_remote_access(p, 1, Vpn(1));
        c.record_remote_access(p, 0, Vpn(2));
        c.reset_page(Vpn(1));
        assert_eq!(c.count(0, Vpn(1)), 0);
        assert_eq!(c.count(1, Vpn(1)), 0);
        assert_eq!(c.count(0, Vpn(2)), 1, "other pages untouched");
    }

    #[test]
    fn baseline_is_256() {
        assert_eq!(
            MigrationPolicy::baseline(),
            MigrationPolicy::AccessCounter { threshold: 256 }
        );
        assert_eq!(
            MigrationPolicy::baseline().to_string(),
            "access-counter(256)"
        );
    }
}
