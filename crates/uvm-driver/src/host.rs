//! The driver's centralized page table and physical-frame management.

use mem_model::interconnect::Node;
use vm_model::addr::{PageSize, Vpn};
use vm_model::memmap::{FrameAllocator, MemoryMap};
use vm_model::page_table::PageTable;
use vm_model::pte::Pte;

/// Errors from host-memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostMemError {
    /// The target device has no free frames.
    OutOfFrames(Node),
    /// The page was never populated.
    UnknownPage(Vpn),
}

impl std::fmt::Display for HostMemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostMemError::OutOfFrames(n) => write!(f, "device {n} is out of physical frames"),
            HostMemError::UnknownPage(v) => write!(f, "page {v} was never populated"),
        }
    }
}

impl std::error::Error for HostMemError {}

/// The centralized, always-up-to-date page table held by the UVM driver,
/// plus the physical-frame allocators for every device.
///
/// Page *location* is encoded in the PTE's frame bits via the global
/// [`MemoryMap`] windows, exactly as remote mapping works on hardware.
///
/// # Example
///
/// ```
/// use uvm_driver::host::HostMemory;
/// use vm_model::{PageSize, Vpn};
/// use vm_model::memmap::MemoryMap;
/// use mem_model::interconnect::Node;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut host = HostMemory::new(MemoryMap::new(2, 1024), PageSize::Size4K);
/// host.populate(Vpn(7))?;
/// assert_eq!(host.owner_of(Vpn(7)), Some(Node::Host));
/// host.move_page(Vpn(7), Node::Gpu(1))?;
/// assert_eq!(host.owner_of(Vpn(7)), Some(Node::Gpu(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HostMemory {
    table: PageTable,
    allocators: Vec<FrameAllocator>,
    memmap: MemoryMap,
}

impl HostMemory {
    /// Creates host memory management over `memmap`.
    pub fn new(memmap: MemoryMap, page_size: PageSize) -> Self {
        let mut allocators: Vec<FrameAllocator> = (0..memmap.n_gpus())
            .map(|g| FrameAllocator::new(Node::Gpu(g), &memmap))
            .collect();
        allocators.push(FrameAllocator::new(Node::Host, &memmap));
        HostMemory {
            table: PageTable::new(page_size),
            allocators,
            memmap,
        }
    }

    fn allocator(&mut self, node: Node) -> &mut FrameAllocator {
        let idx = match node {
            Node::Gpu(g) => g,
            Node::Host => self.memmap.n_gpus(),
        };
        &mut self.allocators[idx]
    }

    /// The memory map in force.
    pub fn memmap(&self) -> MemoryMap {
        self.memmap
    }

    /// Establishes a page in host (CPU) memory — the initial residency of
    /// every UVM allocation.
    ///
    /// # Errors
    /// [`HostMemError::OutOfFrames`] when host memory is exhausted.
    pub fn populate(&mut self, vpn: Vpn) -> Result<Pte, HostMemError> {
        if let Some(pte) = self.table.lookup(vpn) {
            return Ok(pte);
        }
        let frame = self
            .allocator(Node::Host)
            .alloc()
            .ok_or(HostMemError::OutOfFrames(Node::Host))?;
        let ppn = self.memmap.ppn(Node::Host, frame);
        let pte = Pte::new_mapped(ppn, true);
        self.table.insert(vpn, pte);
        Ok(pte)
    }

    /// Current physical location of a page.
    pub fn owner_of(&self, vpn: Vpn) -> Option<Node> {
        self.table
            .lookup(vpn)
            .map(|pte| self.memmap.owner(pte.ppn()))
    }

    /// Reads the host PTE.
    pub fn pte(&self, vpn: Vpn) -> Option<Pte> {
        self.table.lookup(vpn)
    }

    /// Mutable host PTE access (the in-PTE directory writes access bits
    /// here).
    pub fn pte_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        self.table.lookup_mut(vpn)
    }

    /// Moves a page to `to`: allocates a destination frame, frees the old
    /// one and rewrites the host PTE's frame bits (directory/flag bits are
    /// preserved). Returns `(old_ppn, new_ppn)`.
    ///
    /// # Errors
    /// [`HostMemError::UnknownPage`] for unpopulated pages,
    /// [`HostMemError::OutOfFrames`] when `to` is full.
    pub fn move_page(&mut self, vpn: Vpn, to: Node) -> Result<(u64, u64), HostMemError> {
        let pte = self
            .table
            .lookup(vpn)
            .ok_or(HostMemError::UnknownPage(vpn))?;
        let old_ppn = pte.ppn();
        let from = self.memmap.owner(old_ppn);
        if from == to {
            return Ok((old_ppn, old_ppn));
        }
        let frame = self
            .allocator(to)
            .alloc()
            .ok_or(HostMemError::OutOfFrames(to))?;
        let new_ppn = self.memmap.ppn(to, frame);
        let old_frame = self.memmap.local_frame(old_ppn);
        self.allocator(from).free(old_frame);
        // simlint: allow(hot-path-panic) — the same lookup succeeded a few lines up; the table is not touched in between
        let entry = self.table.lookup_mut(vpn).expect("checked above");
        entry.set_ppn(new_ppn);
        entry.validate();
        Ok((old_ppn, new_ppn))
    }

    /// Allocates a frame on `node` without moving anything (used for
    /// replication copies).
    ///
    /// # Errors
    /// [`HostMemError::OutOfFrames`] when the device is full.
    pub fn alloc_frame(&mut self, node: Node) -> Result<u64, HostMemError> {
        let frame = self
            .allocator(node)
            .alloc()
            .ok_or(HostMemError::OutOfFrames(node))?;
        Ok(self.memmap.ppn(node, frame))
    }

    /// Frees a previously allocated frame by global PPN.
    pub fn free_frame(&mut self, ppn: u64) {
        let node = self.memmap.owner(ppn);
        let frame = self.memmap.local_frame(ppn);
        self.allocator(node).free(frame);
    }

    /// Number of pages the driver tracks.
    pub fn pages(&self) -> usize {
        self.table.len()
    }

    /// Read-only view of the centralized table.
    pub fn table(&self) -> &PageTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> HostMemory {
        HostMemory::new(MemoryMap::new(2, 16), PageSize::Size4K)
    }

    #[test]
    fn populate_is_idempotent() {
        let mut h = host();
        let a = h.populate(Vpn(1)).unwrap();
        let b = h.populate(Vpn(1)).unwrap();
        assert_eq!(a, b);
        assert_eq!(h.pages(), 1);
        assert_eq!(h.owner_of(Vpn(1)), Some(Node::Host));
    }

    #[test]
    fn move_page_updates_owner_and_frees_source() {
        let mut h = host();
        h.populate(Vpn(1)).unwrap();
        let (old, new) = h.move_page(Vpn(1), Node::Gpu(0)).unwrap();
        assert_ne!(old, new);
        assert_eq!(h.owner_of(Vpn(1)), Some(Node::Gpu(0)));
        assert_eq!(h.memmap().owner(new), Node::Gpu(0));
        // Move again: GPU0 frame must be recyclable.
        h.move_page(Vpn(1), Node::Gpu(1)).unwrap();
        for i in 0..16 {
            h.populate(Vpn(100 + i)).unwrap();
            h.move_page(Vpn(100 + i), Node::Gpu(0)).unwrap();
        }
        // 16 pages fit on GPU0 only if the earlier frame was freed.
        assert_eq!(h.owner_of(Vpn(115)), Some(Node::Gpu(0)));
    }

    #[test]
    fn move_page_to_same_owner_is_noop() {
        let mut h = host();
        h.populate(Vpn(1)).unwrap();
        h.move_page(Vpn(1), Node::Gpu(0)).unwrap();
        let (old, new) = h.move_page(Vpn(1), Node::Gpu(0)).unwrap();
        assert_eq!(old, new);
    }

    #[test]
    fn move_preserves_directory_bits() {
        let mut h = host();
        h.populate(Vpn(3)).unwrap();
        h.pte_mut(Vpn(3)).unwrap().set_unused_bit(52, true);
        h.move_page(Vpn(3), Node::Gpu(1)).unwrap();
        assert!(h.pte(Vpn(3)).unwrap().unused_bit(52));
    }

    #[test]
    fn out_of_frames_is_an_error() {
        let mut h = HostMemory::new(MemoryMap::new(1, 2), PageSize::Size4K);
        h.populate(Vpn(1)).unwrap();
        h.populate(Vpn(2)).unwrap();
        assert_eq!(
            h.populate(Vpn(3)),
            Err(HostMemError::OutOfFrames(Node::Host))
        );
        h.move_page(Vpn(1), Node::Gpu(0)).unwrap();
        h.move_page(Vpn(2), Node::Gpu(0)).unwrap();
        // GPU 0 window (2 frames) now full; a third page cannot move there.
        h.populate(Vpn(3)).unwrap();
        assert_eq!(
            h.move_page(Vpn(3), Node::Gpu(0)),
            Err(HostMemError::OutOfFrames(Node::Gpu(0)))
        );
    }

    #[test]
    fn unknown_page_errors() {
        let mut h = host();
        assert_eq!(
            h.move_page(Vpn(9), Node::Gpu(0)),
            Err(HostMemError::UnknownPage(Vpn(9)))
        );
        assert_eq!(h.owner_of(Vpn(9)), None);
    }

    #[test]
    fn alloc_and_free_frame_roundtrip() {
        let mut h = HostMemory::new(MemoryMap::new(1, 1), PageSize::Size4K);
        let ppn = h.alloc_frame(Node::Gpu(0)).unwrap();
        assert!(h.alloc_frame(Node::Gpu(0)).is_err());
        h.free_frame(ppn);
        assert!(h.alloc_frame(Node::Gpu(0)).is_ok());
    }
}
