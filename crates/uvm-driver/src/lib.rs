//! Host-side UVM driver substrates.
//!
//! In a UVM-managed multi-GPU system the CPU-resident driver owns the
//! centralized page table, resolves GPU far faults (batched, 256 per batch),
//! decides page placement via a migration policy, and orchestrates the
//! PTE-invalidation protocol that IDYLL optimises. This crate provides the
//! driver's mechanism pieces:
//!
//! * [`host::HostMemory`] — the centralized page table plus per-device frame
//!   allocators;
//! * [`policy`] — first-touch / on-touch / access-counter migration policies
//!   and the per-(GPU, page) access counters;
//! * [`fault::FaultBatcher`] — far-fault batching;
//! * [`migration::MigrationTable`] — in-flight migration state machine
//!   (invalidation fan-out, acks, waiting-latency bookkeeping);
//! * [`replication::ReplicaDirectory`] — the page-replication comparison
//!   policy (§7.4).
//!
//! Protocol *timing* lives in `mgpu-system`; this crate is pure state.

pub mod fault;
pub mod host;
pub mod migration;
pub mod policy;
pub mod prefetch;
pub mod replication;
