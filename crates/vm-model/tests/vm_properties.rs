//! Property-based tests of the VM substrates against reference models.

use std::collections::HashMap;

use proptest::prelude::*;
use vm_model::addr::{PageSize, Vpn};
use vm_model::page_table::PageTable;
use vm_model::pte::Pte;
use vm_model::pwc::PageWalkCache;
use vm_model::tlb::{Tlb, TlbConfig};
use vm_model::walker::{walk_translate, WalkOutcome, WalkerConfig};

#[derive(Debug, Clone)]
enum PtOp {
    Insert(u64, u64),
    Invalidate(u64),
    Remove(u64),
}

fn pt_ops() -> impl Strategy<Value = Vec<PtOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64, 1u64..1000).prop_map(|(v, p)| PtOp::Insert(v, p)),
            (0u64..64).prop_map(PtOp::Invalidate),
            (0u64..64).prop_map(PtOp::Remove),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn page_table_matches_map_model(ops in pt_ops()) {
        let mut pt = PageTable::new(PageSize::Size4K);
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new();
        for op in ops {
            match op {
                PtOp::Insert(v, p) => {
                    pt.insert(Vpn(v), Pte::new_mapped(p, true));
                    model.insert(v, (p, true));
                }
                PtOp::Invalidate(v) => {
                    let was_valid = model.get(&v).map(|&(_, valid)| valid).unwrap_or(false);
                    prop_assert_eq!(pt.invalidate(Vpn(v)), was_valid);
                    if let Some(entry) = model.get_mut(&v) {
                        entry.1 = false;
                    }
                }
                PtOp::Remove(v) => {
                    prop_assert_eq!(pt.remove(Vpn(v)).is_some(), model.remove(&v).is_some());
                }
            }
            prop_assert_eq!(pt.len(), model.len());
        }
        for (v, (p, valid)) in model {
            let pte = pt.lookup(Vpn(v)).expect("model says present");
            prop_assert_eq!(pte.ppn(), p);
            prop_assert_eq!(pte.is_valid(), valid);
        }
    }

    #[test]
    fn walker_agrees_with_page_table_state(
        mapped in prop::collection::hash_map(0u64..128, 1u64..1000, 0..40),
        invalidated in prop::collection::hash_set(0u64..128, 0..20),
        probes in prop::collection::vec(0u64..128, 1..40),
    ) {
        let mut pt = PageTable::new(PageSize::Size4K);
        let mut pwc = PageWalkCache::new(128, 5);
        for (&v, &p) in &mapped {
            pt.insert(Vpn(v), Pte::new_mapped(p, true));
        }
        for &v in &invalidated {
            pt.invalidate(Vpn(v));
        }
        for v in probes {
            let r = walk_translate(&pt, &mut pwc, Vpn(v), WalkerConfig::default());
            match (mapped.get(&v), invalidated.contains(&v)) {
                (Some(&p), false) => {
                    match r.outcome {
                        WalkOutcome::Mapped(pte) => prop_assert_eq!(pte.ppn(), p),
                        other => prop_assert!(false, "expected mapped, got {other:?}"),
                    }
                }
                (Some(_), true) => {
                    prop_assert!(matches!(r.outcome, WalkOutcome::InvalidLeaf(_)));
                }
                (None, _) => {
                    prop_assert!(matches!(r.outcome, WalkOutcome::NotPresent));
                }
            }
            prop_assert!(r.mem_accesses >= 1 && r.mem_accesses <= 5);
            prop_assert_eq!(u64::from(r.mem_accesses) * 100, r.latency.raw());
        }
    }

    #[test]
    fn tlb_never_exceeds_capacity_and_serves_recent_fills(
        fills in prop::collection::vec((0u64..256, 1u64..1000), 1..200),
    ) {
        let mut tlb = Tlb::new(TlbConfig { entries: 16, ways: 4, latency: sim_engine::Cycle(1) });
        for &(v, p) in &fills {
            tlb.fill(Vpn(v), Pte::new_mapped(p, true));
            prop_assert!(tlb.occupancy() <= 16);
            // A just-filled entry is always resident with the latest payload.
            let got = tlb.lookup(Vpn(v)).expect("just filled");
            prop_assert_eq!(got.ppn(), p);
        }
    }

    #[test]
    fn tlb_shootdown_is_complete(
        fills in prop::collection::hash_set(0u64..64, 1..32),
    ) {
        let mut tlb = Tlb::new(TlbConfig::baseline_l2());
        for &v in &fills {
            tlb.fill(Vpn(v), Pte::new_mapped(v + 1, true));
        }
        for &v in &fills {
            tlb.shootdown(Vpn(v));
            prop_assert!(!tlb.contains(Vpn(v)));
        }
        prop_assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn pwc_hits_only_after_fills_on_same_path(
        vpns in prop::collection::vec(0u64..(1 << 20), 1..60),
    ) {
        let mut pwc = PageWalkCache::new(128, 5);
        let mut filled: Vec<u64> = Vec::new();
        for v in vpns {
            if let Some(level) = pwc.deepest_cached(Vpn(v)) {
                // A hit must be explained by some earlier fill sharing the
                // prefix at that level.
                let prefix = Vpn(v).prefix_at(level - 1);
                prop_assert!(
                    filled.iter().any(|&f| Vpn(f).prefix_at(level - 1) == prefix),
                    "unexplained PWC hit at level {level} for {v:#x}"
                );
            }
            pwc.fill_path(Vpn(v), 5);
            filled.push(v);
            // After filling, the own path always hits at the deepest level.
            prop_assert_eq!(pwc.deepest_cached(Vpn(v)), Some(2));
        }
    }
}
