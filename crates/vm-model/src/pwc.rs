//! Page-walk cache.
//!
//! Caches interior page-table entries keyed by `(level, VPN prefix)`. A
//! walker consults the PWC top-down and starts its memory accesses below the
//! deepest cached level, so a hit at level 2 reduces a five-level walk to a
//! single leaf access. The cache is shared by all walker threads (128
//! entries in Table 2), which is exactly why a burst of invalidation walks
//! *thrashes* it — the contention effect IDYLL attacks — and why IRMB-batched
//! invalidations with a common base *amortise* it.

use mem_model::assoc::SetAssoc;
use sim_engine::stats::Counter;

use crate::addr::Vpn;

/// Packs `(level, prefix)` into a single tag. Levels fit in 3 bits.
fn key(level: u32, prefix: u64) -> u64 {
    debug_assert!((2..=7).contains(&level));
    (prefix << 3) | level as u64
}

/// A shared page-walk cache over interior levels (root…L2).
///
/// # Example
///
/// ```
/// use vm_model::pwc::PageWalkCache;
/// use vm_model::addr::Vpn;
///
/// let mut pwc = PageWalkCache::new(128, 5);
/// let vpn = Vpn(0x12345);
/// assert_eq!(pwc.deepest_cached(vpn), None); // cold
/// pwc.fill_path(vpn, 5);
/// assert_eq!(pwc.deepest_cached(vpn), Some(2)); // whole path cached
/// ```
#[derive(Debug, Clone)]
pub struct PageWalkCache {
    entries: SetAssoc<()>,
    levels: u32,
    hits: Counter,
    misses: Counter,
}

impl PageWalkCache {
    /// Creates a PWC with `capacity` entries for a table of `levels` radix
    /// levels. Organised as 4-way set-associative.
    ///
    /// # Panics
    /// Panics if `capacity < 4` or not divisible by 4, or `levels < 2`.
    pub fn new(capacity: usize, levels: u32) -> Self {
        assert!(
            capacity >= 4 && capacity.is_multiple_of(4),
            "capacity must be 4-way"
        );
        assert!(levels >= 2);
        PageWalkCache {
            entries: SetAssoc::new(capacity / 4, 4),
            levels,
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// The deepest (smallest-numbered) interior level whose entry on the
    /// path to `vpn` is cached, or `None` on a complete miss.
    ///
    /// A return of `Some(2)` means the walker can go straight to the leaf.
    /// Recency is refreshed for the hit level only.
    pub fn deepest_cached(&mut self, vpn: Vpn) -> Option<u32> {
        for level in 2..=self.levels {
            // An entry cached "at level L" is the entry *inside* the level-L
            // node, keyed by the prefix identifying that node.
            if self
                .entries
                .get(key(level, vpn.prefix_at(level - 1)))
                .is_some()
            {
                self.hits.inc();
                return Some(level);
            }
        }
        self.misses.inc();
        None
    }

    /// Probes without recency update or statistics.
    pub fn contains(&self, vpn: Vpn, level: u32) -> bool {
        self.entries.contains(key(level, vpn.prefix_at(level - 1)))
    }

    /// Fills the cache with the path entries traversed by a walk that
    /// touched `levels_walked` levels starting from the root. Only interior
    /// levels (≥ 2) are cacheable.
    pub fn fill_path(&mut self, vpn: Vpn, levels_walked: u32) {
        let deepest = (self.levels + 1 - levels_walked).max(2);
        for level in deepest..=self.levels {
            self.entries
                .insert(key(level, vpn.prefix_at(level - 1)), ());
        }
    }

    /// Drops every cached entry (e.g. on a full TLB/PT flush).
    pub fn flush(&mut self) -> usize {
        self.entries.flush()
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Hit rate in `[0,1]`.
    pub fn hit_rate(&self) -> f64 {
        sim_engine::stats::hit_rate(self.hits.get(), self.misses.get())
    }

    /// Total number of radix levels of the table this PWC serves.
    pub fn levels(&self) -> u32 {
        self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_cache_misses() {
        let mut pwc = PageWalkCache::new(128, 5);
        assert_eq!(pwc.deepest_cached(Vpn(0x999)), None);
        assert_eq!(pwc.misses(), 1);
    }

    #[test]
    fn full_walk_fill_then_leaf_only() {
        let mut pwc = PageWalkCache::new(128, 5);
        let vpn = Vpn(0x12345);
        pwc.fill_path(vpn, 5);
        assert_eq!(pwc.deepest_cached(vpn), Some(2));
        assert_eq!(pwc.hits(), 1);
    }

    #[test]
    fn sibling_vpn_shares_the_l2_entry() {
        let mut pwc = PageWalkCache::new(128, 5);
        let a = Vpn(0x200);
        let b = Vpn(0x2ff); // same irmb base (same L2 node entry)
        pwc.fill_path(a, 5);
        assert_eq!(pwc.deepest_cached(b), Some(2));
    }

    #[test]
    fn distant_vpn_shares_only_upper_levels() {
        let mut pwc = PageWalkCache::new(128, 5);
        let a = Vpn(0x200);
        pwc.fill_path(a, 5);
        // Differs in the L2 index → deepest shared is the L3 entry.
        let c = Vpn(0x200 + (1 << 9));
        assert_eq!(pwc.deepest_cached(c), Some(3));
        // Differs in the L4 index → only the root-node (L5) entry is shared.
        let d = Vpn(0x200 + (1 << 27));
        assert_eq!(pwc.deepest_cached(d), Some(5));
        // Differs in the L5 index → no cached entry on the path at all.
        let e = Vpn(0x200 + (1 << 36));
        assert_eq!(pwc.deepest_cached(e), None);
    }

    #[test]
    fn partial_walk_fills_only_touched_levels() {
        let mut pwc = PageWalkCache::new(128, 5);
        let vpn = Vpn(0x4321);
        // Walk aborted after 2 levels (root + L4): caches the L5 and L4 path
        // entries only.
        pwc.fill_path(vpn, 2);
        assert!(pwc.contains(vpn, 5));
        assert!(pwc.contains(vpn, 4));
        assert!(!pwc.contains(vpn, 3));
        assert!(!pwc.contains(vpn, 2));
        assert_eq!(pwc.deepest_cached(vpn), Some(4));
    }

    #[test]
    fn capacity_pressure_evicts() {
        let mut pwc = PageWalkCache::new(8, 5);
        // Fill with many disjoint paths; early entries must be evicted.
        for i in 0..64u64 {
            pwc.fill_path(Vpn(i << 36), 5);
        }
        let survivors = (0..64u64)
            .filter(|&i| {
                let vpn = Vpn(i << 36);
                (2..=5).any(|l| pwc.contains(vpn, l))
            })
            .count();
        assert!(survivors < 64, "eviction must have occurred");
    }

    #[test]
    fn flush_empties() {
        let mut pwc = PageWalkCache::new(16, 5);
        pwc.fill_path(Vpn(1), 5);
        assert!(pwc.flush() > 0);
        assert_eq!(pwc.deepest_cached(Vpn(1)), None);
    }
}
