//! Page-table-walker latency model.
//!
//! A walk issues one memory access per traversed radix level (100 cycles per
//! level in the baseline, Table 2), starting below the deepest level cached
//! in the shared page-walk cache. The walker is used for three request
//! classes, all of which contend for the same PWC and walker threads:
//! demand TLB misses, PTE-invalidation requests (the baseline's shootdown
//! walks) and IRMB write-back batches.

use sim_engine::Cycle;

use crate::addr::Vpn;
use crate::page_table::PageTable;
use crate::pte::Pte;
use crate::pwc::PageWalkCache;

/// Walker timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkerConfig {
    /// Memory latency per traversed level (100 cycles in the baseline,
    /// following NeuMMU's measurement cited by the paper).
    pub per_level_latency: Cycle,
}

impl Default for WalkerConfig {
    fn default() -> Self {
        WalkerConfig {
            per_level_latency: Cycle(100),
        }
    }
}

/// What a completed walk found at the leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOutcome {
    /// A valid leaf PTE: translation succeeded.
    Mapped(Pte),
    /// The leaf PTE exists but its valid bit is clear (it was invalidated
    /// by a migration): the requester must raise a far fault.
    InvalidLeaf(Pte),
    /// No leaf PTE on this GPU: far fault.
    NotPresent,
}

impl WalkOutcome {
    /// The valid translation, if the walk produced one.
    pub fn mapped(self) -> Option<Pte> {
        match self {
            WalkOutcome::Mapped(pte) => Some(pte),
            _ => None,
        }
    }

    /// Whether the requester must raise a far fault.
    pub fn is_fault(self) -> bool {
        !matches!(self, WalkOutcome::Mapped(_))
    }
}

/// Result of one page-table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// What the leaf held.
    pub outcome: WalkOutcome,
    /// Memory accesses performed (levels actually traversed).
    pub mem_accesses: u32,
    /// Total walk latency.
    pub latency: Cycle,
    /// Whether the page-walk cache supplied an interior level.
    pub pwc_hit: bool,
}

/// Performs one translation walk of `pt` for `vpn`, consulting and filling
/// `pwc`, and returns its outcome and latency.
///
/// This models timing only — it never mutates the page table. Invalidation
/// walks use [`walk_invalidate`].
///
/// # Example
///
/// ```
/// use vm_model::{PageSize, Vpn, Pte};
/// use vm_model::page_table::PageTable;
/// use vm_model::pwc::PageWalkCache;
/// use vm_model::walker::{walk_translate, WalkerConfig, WalkOutcome};
///
/// let mut pt = PageTable::new(PageSize::Size4K);
/// let mut pwc = PageWalkCache::new(128, 5);
/// pt.insert(Vpn(7), Pte::new_mapped(3, true));
/// let cold = walk_translate(&pt, &mut pwc, Vpn(7), WalkerConfig::default());
/// assert_eq!(cold.mem_accesses, 5);
/// let warm = walk_translate(&pt, &mut pwc, Vpn(7), WalkerConfig::default());
/// assert_eq!(warm.mem_accesses, 1); // PWC supplies the interior levels
/// ```
pub fn walk_translate(
    pt: &PageTable,
    pwc: &mut PageWalkCache,
    vpn: Vpn,
    cfg: WalkerConfig,
) -> WalkResult {
    let total = pt.page_size().levels();
    let path = pt.probe(vpn);
    let (first_step, pwc_hit) = match pwc.deepest_cached(vpn) {
        // A hit at level d caches the pointer *into* the level-(d-1) table:
        // the first memory access reads that table, which is step
        // `total - (d-1) + 1` counted from the root.
        Some(d) => (total - (d - 1) + 1, true),
        None => (1, false),
    };
    let mem_accesses = if path.levels_present >= first_step {
        path.levels_present - first_step + 1
    } else {
        // The PWC points deeper than this VPN's materialised path — the
        // cached interior entry still needs one access to observe the
        // absent next-level entry.
        1
    };
    pwc.fill_path(vpn, path.levels_present);
    let outcome = if path.levels_present == total {
        match path.leaf {
            Some(pte) if pte.is_valid() => WalkOutcome::Mapped(pte),
            Some(pte) => WalkOutcome::InvalidLeaf(pte),
            None => WalkOutcome::NotPresent,
        }
    } else {
        WalkOutcome::NotPresent
    };
    WalkResult {
        outcome,
        mem_accesses,
        latency: Cycle(cfg.per_level_latency.raw() * mem_accesses as u64),
        pwc_hit,
    }
}

/// Performs an *invalidation* walk: traverses the table exactly like a
/// translation walk (contending for the same resources) and clears the leaf
/// valid bit. Returns the walk result (timing) plus whether the invalidation
/// was *necessary* — i.e. whether a valid PTE was actually present.
pub fn walk_invalidate(
    pt: &mut PageTable,
    pwc: &mut PageWalkCache,
    vpn: Vpn,
    cfg: WalkerConfig,
) -> (WalkResult, bool) {
    let result = walk_translate(pt, pwc, vpn, cfg);
    let necessary = pt.invalidate(vpn);
    (result, necessary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageSize;

    fn setup() -> (PageTable, PageWalkCache) {
        (PageTable::new(PageSize::Size4K), PageWalkCache::new(128, 5))
    }

    #[test]
    fn cold_walk_touches_all_levels() {
        let (mut pt, mut pwc) = setup();
        pt.insert(Vpn(0x42), Pte::new_mapped(9, true));
        let r = walk_translate(&pt, &mut pwc, Vpn(0x42), WalkerConfig::default());
        assert_eq!(r.mem_accesses, 5);
        assert_eq!(r.latency, Cycle(500));
        assert!(!r.pwc_hit);
        assert_eq!(r.outcome.mapped().unwrap().ppn(), 9);
    }

    #[test]
    fn warm_walk_is_single_access() {
        let (mut pt, mut pwc) = setup();
        pt.insert(Vpn(0x42), Pte::new_mapped(9, true));
        walk_translate(&pt, &mut pwc, Vpn(0x42), WalkerConfig::default());
        let r = walk_translate(&pt, &mut pwc, Vpn(0x42), WalkerConfig::default());
        assert_eq!(r.mem_accesses, 1);
        assert_eq!(r.latency, Cycle(100));
        assert!(r.pwc_hit);
    }

    #[test]
    fn sibling_walk_amortises_via_shared_base() {
        let (mut pt, mut pwc) = setup();
        pt.insert(Vpn(0x200), Pte::new_mapped(1, true));
        pt.insert(Vpn(0x201), Pte::new_mapped(2, true));
        walk_translate(&pt, &mut pwc, Vpn(0x200), WalkerConfig::default());
        // Same IRMB base → the L2 entry is cached → leaf-only access.
        let r = walk_translate(&pt, &mut pwc, Vpn(0x201), WalkerConfig::default());
        assert_eq!(r.mem_accesses, 1);
    }

    #[test]
    fn absent_path_aborts_early() {
        let (pt, mut pwc) = setup();
        let r = walk_translate(&pt, &mut pwc, Vpn(0x42), WalkerConfig::default());
        assert_eq!(r.outcome, WalkOutcome::NotPresent);
        assert_eq!(r.mem_accesses, 1, "only the root access happens");
    }

    #[test]
    fn invalid_leaf_is_distinguished_from_absent() {
        let (mut pt, mut pwc) = setup();
        pt.insert(Vpn(0x42), Pte::new_mapped(9, true));
        pt.invalidate(Vpn(0x42));
        let r = walk_translate(&pt, &mut pwc, Vpn(0x42), WalkerConfig::default());
        match r.outcome {
            WalkOutcome::InvalidLeaf(pte) => assert_eq!(pte.ppn(), 9),
            other => panic!("expected InvalidLeaf, got {other:?}"),
        }
        assert!(r.outcome.is_fault());
        assert_eq!(r.mem_accesses, 5, "full walk reaches the stale leaf");
    }

    #[test]
    fn invalidation_walk_reports_necessity_and_clears() {
        let (mut pt, mut pwc) = setup();
        pt.insert(Vpn(0x99), Pte::new_mapped(4, true));
        let (r1, necessary1) =
            walk_invalidate(&mut pt, &mut pwc, Vpn(0x99), WalkerConfig::default());
        assert!(necessary1);
        assert_eq!(r1.mem_accesses, 5);
        assert!(!pt.lookup(Vpn(0x99)).unwrap().is_valid());
        // Second invalidation: unnecessary, but still walks (warm PWC).
        let (r2, necessary2) =
            walk_invalidate(&mut pt, &mut pwc, Vpn(0x99), WalkerConfig::default());
        assert!(!necessary2);
        assert_eq!(r2.mem_accesses, 1);
    }

    #[test]
    fn large_page_walk_is_four_levels() {
        let mut pt = PageTable::new(PageSize::Size2M);
        let mut pwc = PageWalkCache::new(128, 4);
        pt.insert(Vpn(0x7), Pte::new_mapped(1, true));
        let r = walk_translate(&pt, &mut pwc, Vpn(0x7), WalkerConfig::default());
        assert_eq!(r.mem_accesses, 4);
    }
}
