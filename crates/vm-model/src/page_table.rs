//! A multi-level radix page table.
//!
//! The table is *logical*: leaf PTEs live in a hash map and interior nodes
//! are tracked as the set of VPN prefixes that have been materialised.
//! A walk therefore knows exactly how many levels exist on the path to a
//! VPN, which is what the walker's latency model (one memory access per
//! traversed level, 100 cycles each in the baseline) needs.
//!
//! Invalidation keeps the leaf entry in place with its valid bit cleared —
//! matching the paper's model where a PTE "exists but is invalid" and an
//! unnecessary invalidation still walks the full tree.

use sim_engine::collections::{DetHashMap, DetHashSet};

use crate::addr::{PageSize, Vpn};
use crate::pte::Pte;

/// Result of probing the table along the radix path for a VPN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkPath {
    /// Number of levels that must be touched, root first. Always at least 1
    /// (the root is always resident).
    pub levels_present: u32,
    /// The leaf PTE if the path reaches the leaf level.
    pub leaf: Option<Pte>,
}

/// A per-device (or host) radix page table.
///
/// # Example
///
/// ```
/// use vm_model::{PageSize, Vpn, Pte};
/// use vm_model::page_table::PageTable;
///
/// let mut pt = PageTable::new(PageSize::Size4K);
/// pt.insert(Vpn(0x42), Pte::new_mapped(7, true));
/// let probe = pt.probe(Vpn(0x42));
/// assert_eq!(probe.levels_present, 5);
/// assert!(probe.leaf.unwrap().is_valid());
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: PageSize,
    leaves: DetHashMap<Vpn, Pte>,
    /// Materialised interior nodes, keyed by `(level, prefix)` where
    /// `level` runs from `levels` (root's children table) down to 2.
    nodes: DetHashSet<(u32, u64)>,
    insertions: u64,
    invalidations: u64,
}

impl PageTable {
    /// Creates an empty table for the given page size.
    pub fn new(page_size: PageSize) -> Self {
        PageTable {
            page_size,
            leaves: DetHashMap::default(),
            nodes: DetHashSet::default(),
            insertions: 0,
            invalidations: 0,
        }
    }

    /// Page size this table translates.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Number of leaf entries (valid or invalid).
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the table has no leaf entries.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Installs (or overwrites) the leaf PTE for `vpn`, materialising all
    /// interior nodes on the path.
    pub fn insert(&mut self, vpn: Vpn, pte: Pte) {
        self.insertions += 1;
        for level in 2..=self.page_size.levels() {
            self.nodes.insert((level, vpn.prefix_at(level - 1)));
        }
        self.leaves.insert(vpn, pte);
    }

    /// Reads the leaf PTE without any timing semantics.
    pub fn lookup(&self, vpn: Vpn) -> Option<Pte> {
        self.leaves.get(&vpn).copied()
    }

    /// Mutable access to a leaf PTE (e.g. to flip directory access bits).
    pub fn lookup_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        self.leaves.get_mut(&vpn)
    }

    /// Clears the valid bit of the leaf PTE, leaving the entry in place.
    /// Returns `true` if a *valid* entry was actually invalidated — i.e.
    /// whether the invalidation was necessary in the paper's sense.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        self.invalidations += 1;
        match self.leaves.get_mut(&vpn) {
            Some(pte) if pte.is_valid() => {
                pte.invalidate();
                true
            }
            _ => false,
        }
    }

    /// Removes the leaf entry entirely (used when tearing down mappings).
    pub fn remove(&mut self, vpn: Vpn) -> Option<Pte> {
        self.leaves.remove(&vpn)
    }

    /// Probes the radix path for `vpn`: how many levels a hardware walk
    /// would traverse, and the leaf PTE if present.
    ///
    /// The root level is always resident. Interior levels are counted until
    /// the first non-materialised node; if all interior nodes exist, the
    /// walk also touches the leaf level.
    pub fn probe(&self, vpn: Vpn) -> WalkPath {
        let total = self.page_size.levels();
        let mut levels_present = 1; // the root access always happens
        for level in (2..=total).rev() {
            if self.nodes.contains(&(level, vpn.prefix_at(level - 1))) {
                levels_present += 1;
            } else {
                return WalkPath {
                    levels_present,
                    leaf: None,
                };
            }
        }
        WalkPath {
            levels_present,
            leaf: self.lookup(vpn),
        }
    }

    /// Iterates over all `(vpn, pte)` leaves in unspecified order. Callers
    /// must aggregate order-insensitively (counts, sums) or sort.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        // simlint: allow(unordered-iter) — callers count stale PTEs, order-insensitive
        self.leaves.iter().map(|(&v, &p)| (v, p))
    }

    /// Total `insert` calls.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Total `invalidate` calls (necessary or not).
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut pt = PageTable::new(PageSize::Size4K);
        assert!(pt.is_empty());
        pt.insert(Vpn(1), Pte::new_mapped(10, false));
        assert_eq!(pt.lookup(Vpn(1)).unwrap().ppn(), 10);
        assert_eq!(pt.lookup(Vpn(2)), None);
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn probe_empty_table_touches_root_only() {
        let pt = PageTable::new(PageSize::Size4K);
        let p = pt.probe(Vpn(0x123));
        assert_eq!(p.levels_present, 1);
        assert_eq!(p.leaf, None);
    }

    #[test]
    fn probe_full_path_after_insert() {
        let mut pt = PageTable::new(PageSize::Size4K);
        pt.insert(Vpn(0x42), Pte::new_mapped(1, true));
        let p = pt.probe(Vpn(0x42));
        assert_eq!(p.levels_present, 5);
        assert!(p.leaf.unwrap().is_valid());
    }

    #[test]
    fn probe_sibling_page_shares_interior_nodes() {
        let mut pt = PageTable::new(PageSize::Size4K);
        pt.insert(Vpn(0x200), Pte::new_mapped(1, true));
        // Same L2 node (same irmb base), different leaf slot: full path
        // exists but the leaf PTE is absent.
        let p = pt.probe(Vpn(0x201));
        assert_eq!(p.levels_present, 5);
        assert_eq!(p.leaf, None);
        // A distant VPN shares only the root.
        let q = pt.probe(Vpn(0x200 ^ (1 << 40)));
        assert_eq!(q.levels_present, 1);
    }

    #[test]
    fn invalidate_keeps_entry_reports_necessity() {
        let mut pt = PageTable::new(PageSize::Size4K);
        pt.insert(Vpn(5), Pte::new_mapped(9, true));
        assert!(pt.invalidate(Vpn(5)), "first invalidation is necessary");
        assert!(!pt.invalidate(Vpn(5)), "second is unnecessary");
        assert!(!pt.invalidate(Vpn(6)), "absent PTE is unnecessary");
        let leaf = pt.lookup(Vpn(5)).unwrap();
        assert!(!leaf.is_valid());
        assert_eq!(leaf.ppn(), 9);
        assert_eq!(pt.invalidations(), 3);
    }

    #[test]
    fn reinsert_after_invalidate_revalidates() {
        let mut pt = PageTable::new(PageSize::Size4K);
        pt.insert(Vpn(5), Pte::new_mapped(9, true));
        pt.invalidate(Vpn(5));
        pt.insert(Vpn(5), Pte::new_mapped(11, true));
        let leaf = pt.lookup(Vpn(5)).unwrap();
        assert!(leaf.is_valid());
        assert_eq!(leaf.ppn(), 11);
    }

    #[test]
    fn large_pages_have_four_levels() {
        let mut pt = PageTable::new(PageSize::Size2M);
        pt.insert(Vpn(0x42), Pte::new_mapped(1, true));
        assert_eq!(pt.probe(Vpn(0x42)).levels_present, 4);
    }

    #[test]
    fn lookup_mut_allows_bit_updates() {
        let mut pt = PageTable::new(PageSize::Size4K);
        pt.insert(Vpn(7), Pte::new_mapped(3, true));
        pt.lookup_mut(Vpn(7)).unwrap().set_unused_bit(52, true);
        assert!(pt.lookup(Vpn(7)).unwrap().unused_bit(52));
    }
}
