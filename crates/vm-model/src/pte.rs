//! The x86-64 page-table-entry format of Figure 8, including the unused
//! bits 62–52 that the in-PTE directory repurposes as GPU access bits.
//!
//! ```text
//!  63  62       52  51              12  11 9  8 7 6 5 4   3   2   1   0
//! +---+------------+-------------------+-----+-+-+-+-+---+---+---+---+---+
//! |XD |  UB (11b)  |  4 KB page frame  | UB  |G|P|D|A|PCD|PWT|U/S|R/W| V |
//! +---+------------+-------------------+-----+-+-+-+-+---+---+---+---+---+
//! ```

/// A raw 64-bit page-table entry.
///
/// The type exposes exactly the fields the simulator needs: validity, write
/// permission, the physical page number, the accessed/dirty bookkeeping bits
/// and raw access to the unused bits 62–52 (the in-PTE directory's storage).
///
/// # Example
///
/// ```
/// use vm_model::pte::Pte;
/// let mut pte = Pte::new_mapped(0x42, true);
/// assert!(pte.is_valid());
/// assert_eq!(pte.ppn(), 0x42);
/// pte.set_unused_bit(52, true);
/// assert!(pte.unused_bit(52));
/// pte.invalidate();
/// assert!(!pte.is_valid());
/// assert_eq!(pte.ppn(), 0x42, "frame bits survive invalidation");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(pub u64);

const BIT_VALID: u64 = 1 << 0;
const BIT_RW: u64 = 1 << 1;
const BIT_ACCESSED: u64 = 1 << 5;
const BIT_DIRTY: u64 = 1 << 6;
const PPN_SHIFT: u32 = 12;
const PPN_MASK: u64 = ((1u64 << 40) - 1) << PPN_SHIFT; // bits 51..=12

/// Inclusive range of the high unused bits (Figure 8): 62..=52.
pub const UNUSED_HI_LO: u32 = 52;
/// Top of the high unused-bit range.
pub const UNUSED_HI_HI: u32 = 62;
/// Number of high unused bits available for access bits.
pub const UNUSED_HI_COUNT: u32 = UNUSED_HI_HI - UNUSED_HI_LO + 1; // 11

impl Pte {
    /// An all-zero (not-present) entry.
    pub const NOT_PRESENT: Pte = Pte(0);

    /// Creates a valid entry mapping to physical page `ppn`.
    ///
    /// # Panics
    /// Panics if `ppn` does not fit in the 40-bit frame field.
    pub fn new_mapped(ppn: u64, writable: bool) -> Pte {
        assert!(ppn < (1 << 40), "ppn out of range");
        let mut raw = BIT_VALID | (ppn << PPN_SHIFT);
        if writable {
            raw |= BIT_RW;
        }
        Pte(raw)
    }

    /// Whether the valid (present) bit is set.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 & BIT_VALID != 0
    }

    /// Whether the entry permits writes.
    #[inline]
    pub fn is_writable(self) -> bool {
        self.0 & BIT_RW != 0
    }

    /// The physical page number in bits 51–12.
    #[inline]
    pub fn ppn(self) -> u64 {
        (self.0 & PPN_MASK) >> PPN_SHIFT
    }

    /// Replaces the physical page number, preserving every other bit.
    pub fn set_ppn(&mut self, ppn: u64) {
        assert!(ppn < (1 << 40), "ppn out of range");
        self.0 = (self.0 & !PPN_MASK) | (ppn << PPN_SHIFT);
    }

    /// Clears the valid bit (translation-coherence invalidation). All other
    /// bits — including the directory's access bits — are preserved.
    #[inline]
    pub fn invalidate(&mut self) {
        self.0 &= !BIT_VALID;
    }

    /// Sets the valid bit.
    #[inline]
    pub fn validate(&mut self) {
        self.0 |= BIT_VALID;
    }

    /// Marks the accessed bit.
    #[inline]
    pub fn mark_accessed(&mut self) {
        self.0 |= BIT_ACCESSED;
    }

    /// Whether the accessed bit is set.
    #[inline]
    pub fn accessed(self) -> bool {
        self.0 & BIT_ACCESSED != 0
    }

    /// Marks the dirty bit.
    #[inline]
    pub fn mark_dirty(&mut self) {
        self.0 |= BIT_DIRTY;
    }

    /// Whether the dirty bit is set.
    #[inline]
    pub fn dirty(self) -> bool {
        self.0 & BIT_DIRTY != 0
    }

    /// Reads one of the architecturally unused bits (62–52 or 11–9).
    ///
    /// # Panics
    /// Panics if `bit` is not an unused bit position.
    #[inline]
    pub fn unused_bit(self, bit: u32) -> bool {
        assert!(is_unused_bit(bit), "bit {bit} is architecturally used");
        self.0 & (1u64 << bit) != 0
    }

    /// Writes one of the architecturally unused bits.
    ///
    /// # Panics
    /// Panics if `bit` is not an unused bit position.
    #[inline]
    pub fn set_unused_bit(&mut self, bit: u32, value: bool) {
        assert!(is_unused_bit(bit), "bit {bit} is architecturally used");
        if value {
            self.0 |= 1u64 << bit;
        } else {
            self.0 &= !(1u64 << bit);
        }
    }

    /// Reads the whole high unused-bit field (bits 62–52) as an 11-bit mask,
    /// bit *i* of the result being PTE bit `52 + i`.
    #[inline]
    pub fn unused_hi_field(self) -> u16 {
        // simlint: allow(lossy-cast) — masked to UNUSED_HI_COUNT (< 16) bits before the cast
        ((self.0 >> UNUSED_HI_LO) & ((1 << UNUSED_HI_COUNT) - 1)) as u16
    }

    /// Overwrites the whole high unused-bit field.
    ///
    /// # Panics
    /// Panics if `field` exceeds 11 bits.
    #[inline]
    pub fn set_unused_hi_field(&mut self, field: u16) {
        assert!(field < (1 << UNUSED_HI_COUNT), "field wider than 11 bits");
        let mask = ((1u64 << UNUSED_HI_COUNT) - 1) << UNUSED_HI_LO;
        self.0 = (self.0 & !mask) | ((field as u64) << UNUSED_HI_LO);
    }
}

/// Whether `bit` is one of the unused PTE bits per Figure 8 (62–52, 11–9).
pub const fn is_unused_bit(bit: u32) -> bool {
    (bit >= UNUSED_HI_LO && bit <= UNUSED_HI_HI) || (bit >= 9 && bit <= 11)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_mapped_sets_fields() {
        let pte = Pte::new_mapped(0xdead, true);
        assert!(pte.is_valid());
        assert!(pte.is_writable());
        assert_eq!(pte.ppn(), 0xdead);
        let ro = Pte::new_mapped(1, false);
        assert!(!ro.is_writable());
    }

    #[test]
    fn invalidate_preserves_frame_and_directory_bits() {
        let mut pte = Pte::new_mapped(0x1234, true);
        pte.set_unused_bit(53, true);
        pte.invalidate();
        assert!(!pte.is_valid());
        assert_eq!(pte.ppn(), 0x1234);
        assert!(pte.unused_bit(53));
        pte.validate();
        assert!(pte.is_valid());
    }

    #[test]
    fn set_ppn_preserves_flags() {
        let mut pte = Pte::new_mapped(1, true);
        pte.mark_accessed();
        pte.mark_dirty();
        pte.set_ppn(0xff);
        assert_eq!(pte.ppn(), 0xff);
        assert!(pte.accessed());
        assert!(pte.dirty());
        assert!(pte.is_valid());
        assert!(pte.is_writable());
    }

    #[test]
    fn unused_bits_are_independent() {
        let mut pte = Pte::NOT_PRESENT;
        for bit in (52..=62).chain(9..=11) {
            pte.set_unused_bit(bit, true);
            assert!(pte.unused_bit(bit));
            pte.set_unused_bit(bit, false);
            assert!(!pte.unused_bit(bit));
            assert_eq!(pte.0, 0, "bit {bit} leaked");
        }
    }

    #[test]
    fn unused_hi_field_roundtrip() {
        let mut pte = Pte::new_mapped(0x1, true);
        pte.set_unused_hi_field(0b101_0101_0101);
        assert_eq!(pte.unused_hi_field(), 0b101_0101_0101);
        assert_eq!(pte.ppn(), 0x1, "frame untouched");
        pte.set_unused_hi_field(0);
        assert_eq!(pte.unused_hi_field(), 0);
    }

    #[test]
    fn unused_hi_field_does_not_clobber_xd_or_frame() {
        let mut pte = Pte(1u64 << 63 /* XD */ | (0xff << PPN_SHIFT) | BIT_VALID);
        pte.set_unused_hi_field(0x7ff);
        assert_eq!(pte.0 >> 63, 1, "XD bit intact");
        assert_eq!(pte.ppn(), 0xff);
    }

    #[test]
    fn is_unused_bit_boundaries() {
        assert!(is_unused_bit(52));
        assert!(is_unused_bit(62));
        assert!(!is_unused_bit(63)); // XD
        assert!(!is_unused_bit(51)); // frame
        assert!(is_unused_bit(9));
        assert!(is_unused_bit(11));
        assert!(!is_unused_bit(8)); // G
        assert!(!is_unused_bit(12)); // frame
    }

    #[test]
    #[should_panic(expected = "architecturally used")]
    fn touching_used_bit_panics() {
        let mut pte = Pte::NOT_PRESENT;
        pte.set_unused_bit(0, true);
    }

    #[test]
    #[should_panic(expected = "ppn out of range")]
    fn oversized_ppn_panics() {
        let _ = Pte::new_mapped(1 << 40, false);
    }
}
