//! Virtual-memory substrates: addresses, page-table entries, radix page
//! tables, TLBs, page-walk caches and the page-table-walker latency model.
//!
//! The model follows the paper's Figure 8/9 conventions: a 57-bit virtual
//! address space with five 9-bit radix levels (L5…L1) for 4 KiB pages, the
//! x86-64 PTE layout with unused bits 62–52 and 11–9, and a page-walk cache
//! covering the upper levels so that walks sharing a prefix are amortised —
//! the effect IDYLL's batched lazy invalidation exploits.
//!
//! # Example
//!
//! ```
//! use vm_model::addr::{PageSize, Vpn};
//! use vm_model::page_table::PageTable;
//! use vm_model::pte::Pte;
//!
//! let mut pt = PageTable::new(PageSize::Size4K);
//! let vpn = Vpn(0x12345);
//! pt.insert(vpn, Pte::new_mapped(7, true));
//! assert!(pt.lookup(vpn).unwrap().is_valid());
//! ```

pub mod addr;
pub mod memmap;
pub mod page_table;
pub mod pte;
pub mod pwc;
pub mod tlb;
pub mod walker;

pub use addr::{PageSize, VirtAddr, Vpn};
pub use pte::Pte;
