//! Virtual addresses, virtual page numbers and page sizes.
//!
//! The simulated machine uses 57-bit virtual addresses (x86-64 LA57), giving
//! a 45-bit VPN at 4 KiB granularity split into five 9-bit radix levels
//! L5…L1 (Figure 9 of the paper). The IRMB partitions the VPN into a 36-bit
//! *base* (levels L5–L2) and a 9-bit *offset* (level L1).

/// Supported page sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageSize {
    /// 4 KiB pages — the paper's baseline (§4).
    #[default]
    Size4K,
    /// 2 MiB large pages — evaluated in §7.3.
    Size2M,
}

impl PageSize {
    /// Page size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 4096,
            PageSize::Size2M => 2 * 1024 * 1024,
        }
    }

    /// log2 of the page size.
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
        }
    }

    /// Number of radix levels walked to reach the leaf PTE (5 for 4 KiB with
    /// LA57; 4 for 2 MiB, whose leaf lives at L2).
    pub const fn levels(self) -> u32 {
        match self {
            PageSize::Size4K => 5,
            PageSize::Size2M => 4,
        }
    }

    /// Width of the VPN in bits (57-bit VA minus the page offset).
    pub const fn vpn_bits(self) -> u32 {
        57 - self.shift()
    }
}

impl std::fmt::Display for PageSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4KB"),
            PageSize::Size2M => write!(f, "2MB"),
        }
    }
}

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// The 9-bit IRMB *offset* (the L1 index of the VPN).
    #[inline]
    pub fn irmb_offset(self) -> u16 {
        // simlint: allow(lossy-cast) — masked to 9 bits before the cast
        (self.0 & 0x1ff) as u16
    }

    /// The IRMB *base*: all VPN bits above the L1 index (36 bits for 4 KiB
    /// pages).
    #[inline]
    pub fn irmb_base(self) -> u64 {
        self.0 >> 9
    }

    /// Reassembles a VPN from an IRMB `(base, offset)` pair.
    #[inline]
    pub fn from_irmb(base: u64, offset: u16) -> Vpn {
        Vpn((base << 9) | offset as u64)
    }

    /// The 9-bit radix index at `level` (1 = leaf … `levels` = root).
    ///
    /// # Panics
    /// Panics if `level == 0`.
    #[inline]
    pub fn level_index(self, level: u32) -> u16 {
        assert!(level >= 1, "levels are 1-based");
        // simlint: allow(lossy-cast) — masked to 9 bits before the cast
        ((self.0 >> (9 * (level - 1))) & 0x1ff) as u16
    }

    /// The VPN prefix identifying the page-table node *entered at* `level`:
    /// all index bits above (and excluding) that level's own index.
    /// The root (highest level) has prefix 0.
    #[inline]
    pub fn prefix_at(self, level: u32) -> u64 {
        self.0 >> (9 * level)
    }

    /// Raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Vpn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A 57-bit virtual byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Builds an address from a VPN and in-page byte offset.
    ///
    /// # Panics
    /// Panics if `offset` exceeds the page size.
    pub fn from_parts(vpn: Vpn, offset: u64, size: PageSize) -> VirtAddr {
        assert!(offset < size.bytes(), "offset beyond page");
        VirtAddr((vpn.0 << size.shift()) | offset)
    }

    /// The virtual page number at the given granularity.
    #[inline]
    pub fn vpn(self, size: PageSize) -> Vpn {
        Vpn(self.0 >> size.shift())
    }

    /// The byte offset within the page.
    #[inline]
    pub fn page_offset(self, size: PageSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }

    /// Raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_constants() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size4K.shift(), 12);
        assert_eq!(PageSize::Size4K.levels(), 5);
        assert_eq!(PageSize::Size4K.vpn_bits(), 45);
        assert_eq!(PageSize::Size2M.bytes(), 1 << 21);
        assert_eq!(PageSize::Size2M.levels(), 4);
        assert_eq!(PageSize::Size2M.vpn_bits(), 36);
    }

    #[test]
    fn vpn_irmb_split_roundtrips() {
        let vpn = Vpn(0x1_2345_6789);
        let (base, off) = (vpn.irmb_base(), vpn.irmb_offset());
        assert_eq!(off, 0x189);
        assert_eq!(Vpn::from_irmb(base, off), vpn);
    }

    #[test]
    fn level_indices_partition_the_vpn() {
        // VPN with distinct 9-bit groups: L1=1, L2=2, L3=3, L4=4, L5=5.
        let vpn = Vpn((5 << 36) | (4 << 27) | (3 << 18) | (2 << 9) | 1);
        assert_eq!(vpn.level_index(1), 1);
        assert_eq!(vpn.level_index(2), 2);
        assert_eq!(vpn.level_index(3), 3);
        assert_eq!(vpn.level_index(4), 4);
        assert_eq!(vpn.level_index(5), 5);
    }

    #[test]
    fn prefixes_nest() {
        let vpn = Vpn(0x1_2345_6789);
        // Prefix at the leaf equals the IRMB base.
        assert_eq!(vpn.prefix_at(1), vpn.irmb_base());
        // Each higher level strips 9 more bits.
        assert_eq!(vpn.prefix_at(2), vpn.0 >> 18);
        assert_eq!(vpn.prefix_at(5), vpn.0 >> 45);
    }

    #[test]
    fn virtaddr_vpn_extraction() {
        let va = VirtAddr(0x1234_5678);
        assert_eq!(va.vpn(PageSize::Size4K), Vpn(0x12345));
        assert_eq!(va.page_offset(PageSize::Size4K), 0x678);
        assert_eq!(va.vpn(PageSize::Size2M), Vpn(0x91));
    }

    #[test]
    fn virtaddr_roundtrip() {
        let va = VirtAddr::from_parts(Vpn(0xabc), 0x123, PageSize::Size4K);
        assert_eq!(va.vpn(PageSize::Size4K), Vpn(0xabc));
        assert_eq!(va.page_offset(PageSize::Size4K), 0x123);
    }

    #[test]
    #[should_panic(expected = "offset beyond page")]
    fn oversized_offset_panics() {
        let _ = VirtAddr::from_parts(Vpn(1), 4096, PageSize::Size4K);
    }
}
