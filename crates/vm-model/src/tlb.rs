//! Translation lookaside buffers.
//!
//! The baseline hierarchy (Table 2): per-CU fully-associative 32-entry L1
//! TLBs with 1-cycle lookup, and a 512-entry 16-way shared L2 TLB with
//! 10-cycle lookup, LRU replacement throughout. Shootdowns invalidate
//! individual VPNs immediately upon a migration's invalidation message —
//! both in the baseline and in IDYLL (only the *PTE* update is lazy).

use mem_model::assoc::{Inserted, SetAssoc};
use sim_engine::{stats::Counter, Cycle};

use crate::addr::Vpn;
use crate::pte::Pte;

/// Geometry and latency of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity. Use `entries` for fully-associative.
    pub ways: usize,
    /// Lookup latency in cycles.
    pub latency: Cycle,
}

impl TlbConfig {
    /// The baseline per-CU L1 TLB: 32 entries, fully associative, 1 cycle.
    pub fn baseline_l1() -> Self {
        TlbConfig {
            entries: 32,
            ways: 32,
            latency: Cycle(1),
        }
    }

    /// The baseline shared L2 TLB: 512 entries, 16-way, 10 cycles.
    pub fn baseline_l2() -> Self {
        TlbConfig {
            entries: 512,
            ways: 16,
            latency: Cycle(10),
        }
    }

    /// The enlarged L2 TLB studied in §7.2: 2048 entries, 64-way.
    pub fn large_l2() -> Self {
        TlbConfig {
            entries: 2048,
            ways: 64,
            latency: Cycle(10),
        }
    }
}

/// A TLB caching leaf PTEs by VPN.
///
/// # Example
///
/// ```
/// use vm_model::tlb::{Tlb, TlbConfig};
/// use vm_model::{Vpn, Pte};
///
/// let mut tlb = Tlb::new(TlbConfig::baseline_l1());
/// assert!(tlb.lookup(Vpn(9)).is_none());
/// tlb.fill(Vpn(9), Pte::new_mapped(3, true));
/// assert_eq!(tlb.lookup(Vpn(9)).unwrap().ppn(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: SetAssoc<Pte>,
    config: TlbConfig,
    hits: Counter,
    misses: Counter,
    shootdowns: Counter,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    /// Panics unless `entries` divides evenly by `ways`.
    pub fn new(config: TlbConfig) -> Self {
        assert!(
            config.entries.is_multiple_of(config.ways),
            "entries must divide by ways"
        );
        Tlb {
            entries: SetAssoc::new(config.entries / config.ways, config.ways),
            config,
            hits: Counter::new(),
            misses: Counter::new(),
            shootdowns: Counter::new(),
        }
    }

    /// Looks up `vpn`, counting a hit or miss and refreshing recency.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Pte> {
        match self.entries.get(vpn.0) {
            Some(&pte) => {
                self.hits.inc();
                Some(pte)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Probes without statistics or recency update.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.entries.contains(vpn.0)
    }

    /// Reads an entry without statistics or recency update (used by retry
    /// paths whose architectural lookup was already counted).
    pub fn peek(&self, vpn: Vpn) -> Option<Pte> {
        self.entries.peek(vpn.0).copied()
    }

    /// Installs a translation, evicting per-set LRU if needed. Returns the
    /// evicted `(vpn, pte)` if any.
    pub fn fill(&mut self, vpn: Vpn, pte: Pte) -> Option<(Vpn, Pte)> {
        match self.entries.insert(vpn.0, pte) {
            Inserted::Evicted { tag, value } => Some((Vpn(tag), value)),
            _ => None,
        }
    }

    /// Shoots down a single VPN. Returns whether an entry was present.
    pub fn shootdown(&mut self, vpn: Vpn) -> bool {
        self.shootdowns.inc();
        self.entries.invalidate(vpn.0).is_some()
    }

    /// Flushes the whole TLB, returning entries dropped.
    pub fn flush(&mut self) -> usize {
        self.entries.flush()
    }

    /// Lookup latency of this level.
    pub fn latency(&self) -> Cycle {
        self.config.latency
    }

    /// Configuration.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Shootdown messages processed.
    pub fn shootdowns(&self) -> u64 {
        self.shootdowns.get()
    }

    /// Current number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        sim_engine::stats::hit_rate(self.hits.get(), self.misses.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_fill_hit() {
        let mut tlb = Tlb::new(TlbConfig::baseline_l1());
        assert!(tlb.lookup(Vpn(1)).is_none());
        tlb.fill(Vpn(1), Pte::new_mapped(5, true));
        assert_eq!(tlb.lookup(Vpn(1)).unwrap().ppn(), 5);
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn capacity_eviction_in_fa_tlb() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 2,
            ways: 2,
            latency: Cycle(1),
        });
        tlb.fill(Vpn(1), Pte::new_mapped(1, true));
        tlb.fill(Vpn(2), Pte::new_mapped(2, true));
        tlb.lookup(Vpn(1)); // make 2 the LRU
        let evicted = tlb.fill(Vpn(3), Pte::new_mapped(3, true)).unwrap();
        assert_eq!(evicted.0, Vpn(2));
        assert!(tlb.contains(Vpn(1)));
        assert!(tlb.contains(Vpn(3)));
    }

    #[test]
    fn shootdown_removes_entry() {
        let mut tlb = Tlb::new(TlbConfig::baseline_l2());
        tlb.fill(Vpn(0x42), Pte::new_mapped(1, true));
        assert!(tlb.shootdown(Vpn(0x42)));
        assert!(!tlb.shootdown(Vpn(0x42)), "second shootdown finds nothing");
        assert!(tlb.lookup(Vpn(0x42)).is_none());
        assert_eq!(tlb.shootdowns(), 2);
    }

    #[test]
    fn flush_drops_everything() {
        let mut tlb = Tlb::new(TlbConfig::baseline_l2());
        for i in 0..100 {
            tlb.fill(Vpn(i), Pte::new_mapped(i, true));
        }
        assert_eq!(tlb.occupancy(), 100);
        assert_eq!(tlb.flush(), 100);
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn set_conflicts_respect_geometry() {
        // 4 sets x 1 way: VPNs 0 and 4 conflict.
        let mut tlb = Tlb::new(TlbConfig {
            entries: 4,
            ways: 1,
            latency: Cycle(1),
        });
        tlb.fill(Vpn(0), Pte::new_mapped(0, true));
        let ev = tlb.fill(Vpn(4), Pte::new_mapped(4, true)).unwrap();
        assert_eq!(ev.0, Vpn(0));
        assert!(tlb.contains(Vpn(4)));
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_geometry_panics() {
        let _ = Tlb::new(TlbConfig {
            entries: 10,
            ways: 4,
            latency: Cycle(1),
        });
    }
}
