//! System physical-memory layout.
//!
//! Physical page numbers are partitioned into per-device windows so that a
//! PTE's frame bits alone identify *where* a page lives — exactly how remote
//! mapping works on real multi-GPU systems: the local page table stores a
//! physical address in a remote GPU's memory aperture.

use mem_model::interconnect::{GpuId, Node};

/// Partitions the physical page-number space into one window per GPU plus a
/// final window for host memory.
///
/// # Example
///
/// ```
/// use vm_model::memmap::MemoryMap;
/// use mem_model::interconnect::Node;
///
/// let mm = MemoryMap::new(4, 1 << 20); // 4 GPUs x 4 GiB of 4 KiB frames
/// let ppn = mm.ppn(Node::Gpu(2), 5);
/// assert_eq!(mm.owner(ppn), Node::Gpu(2));
/// assert_eq!(mm.local_frame(ppn), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryMap {
    n_gpus: usize,
    frames_per_device: u64,
}

impl MemoryMap {
    /// Creates a map for `n_gpus` GPUs with `frames_per_device` physical
    /// frames in each device window (the host gets the window after the last
    /// GPU).
    ///
    /// # Panics
    /// Panics if either parameter is zero or the windows overflow the 40-bit
    /// frame field.
    pub fn new(n_gpus: usize, frames_per_device: u64) -> Self {
        assert!(n_gpus > 0 && frames_per_device > 0);
        let windows = n_gpus as u64 + 1;
        assert!(
            windows * frames_per_device <= (1 << 40),
            "physical space exceeds 40-bit frame field"
        );
        MemoryMap {
            n_gpus,
            frames_per_device,
        }
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Frames per device window.
    pub fn frames_per_device(&self) -> u64 {
        self.frames_per_device
    }

    fn window_of(&self, node: Node) -> u64 {
        match node {
            Node::Gpu(g) => {
                assert!(g < self.n_gpus, "gpu id out of range");
                g as u64
            }
            Node::Host => self.n_gpus as u64,
        }
    }

    /// The global PPN of local frame `frame` on `node`.
    ///
    /// # Panics
    /// Panics if `frame` exceeds the device window or the GPU id is out of
    /// range.
    pub fn ppn(&self, node: Node, frame: u64) -> u64 {
        assert!(frame < self.frames_per_device, "frame beyond device window");
        self.window_of(node) * self.frames_per_device + frame
    }

    /// Which device owns a global PPN.
    ///
    /// # Panics
    /// Panics if the PPN is beyond all windows.
    pub fn owner(&self, ppn: u64) -> Node {
        let w = ppn / self.frames_per_device;
        if w < self.n_gpus as u64 {
            Node::Gpu(w as GpuId)
        } else if w == self.n_gpus as u64 {
            Node::Host
        } else {
            // simlint: allow(hot-path-panic) — documented `# Panics` contract: PPNs come from this map's own windows, so an out-of-range PPN is memory corruption
            panic!("ppn {ppn:#x} beyond physical space");
        }
    }

    /// The frame index within its owner's window.
    pub fn local_frame(&self, ppn: u64) -> u64 {
        ppn % self.frames_per_device
    }
}

/// A bump allocator of physical frames for one device window.
///
/// Frames freed by migration are recycled LIFO.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    node: Node,
    next: u64,
    limit: u64,
    free_list: Vec<u64>,
}

impl FrameAllocator {
    /// Creates an allocator over the whole window of `node` in `map`.
    pub fn new(node: Node, map: &MemoryMap) -> Self {
        FrameAllocator {
            node,
            next: 0,
            limit: map.frames_per_device(),
            free_list: Vec::new(),
        }
    }

    /// Allocates a local frame, or `None` when the device is full.
    pub fn alloc(&mut self) -> Option<u64> {
        if let Some(f) = self.free_list.pop() {
            return Some(f);
        }
        if self.next < self.limit {
            let f = self.next;
            self.next += 1;
            Some(f)
        } else {
            None
        }
    }

    /// Returns a frame to the pool.
    ///
    /// # Panics
    /// Panics (debug) if the frame was never allocated.
    pub fn free(&mut self, frame: u64) {
        debug_assert!(frame < self.next, "freeing unallocated frame");
        self.free_list.push(frame);
    }

    /// Device that owns this allocator.
    pub fn node(&self) -> Node {
        self.node
    }

    /// Frames currently in use.
    pub fn in_use(&self) -> u64 {
        self.next - self.free_list.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_disjoint_and_total() {
        let mm = MemoryMap::new(3, 100);
        for g in 0..3 {
            let ppn = mm.ppn(Node::Gpu(g), 99);
            assert_eq!(mm.owner(ppn), Node::Gpu(g));
            assert_eq!(mm.local_frame(ppn), 99);
        }
        let h = mm.ppn(Node::Host, 0);
        assert_eq!(mm.owner(h), Node::Host);
        assert_eq!(h, 300);
    }

    #[test]
    #[should_panic(expected = "beyond device window")]
    fn overflow_frame_panics() {
        let mm = MemoryMap::new(1, 10);
        mm.ppn(Node::Gpu(0), 10);
    }

    #[test]
    #[should_panic(expected = "beyond physical space")]
    fn alien_ppn_panics() {
        let mm = MemoryMap::new(1, 10);
        mm.owner(21);
    }

    #[test]
    fn allocator_bumps_then_recycles() {
        let mm = MemoryMap::new(1, 3);
        let mut fa = FrameAllocator::new(Node::Gpu(0), &mm);
        assert_eq!(fa.alloc(), Some(0));
        assert_eq!(fa.alloc(), Some(1));
        assert_eq!(fa.alloc(), Some(2));
        assert_eq!(fa.alloc(), None, "window exhausted");
        fa.free(1);
        assert_eq!(fa.in_use(), 2);
        assert_eq!(fa.alloc(), Some(1), "recycled frame");
        assert_eq!(fa.alloc(), None);
    }
}
