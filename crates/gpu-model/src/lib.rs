//! The per-GPU hardware model: compute units with warp-level latency hiding,
//! the TLB hierarchy, the GMMU (page-walk queue, shared page-walk cache,
//! multi-threaded walker) and the data path (L1/L2 caches, device DRAM).
//!
//! The structures here are passive state with precisely-tested local
//! semantics; the multi-GPU protocol that connects them (far faults,
//! migrations, invalidations) is orchestrated event-by-event in
//! `mgpu-system`.

pub mod cu;
pub mod gmmu;
pub mod gpu;
pub mod scheduler;
