//! The GPU Memory Management Unit.
//!
//! Per Table 2 and Figure 3, the GMMU owns (i) a 64-entry page-walk queue
//! buffering translation requests, (ii) a 128-entry page-walk cache shared
//! across walker threads, and (iii) 8 walker threads at 100 cycles per
//! level. Crucially, in the baseline every class of request — demand TLB
//! misses, migration-induced PTE invalidations and driver PTE updates —
//! flows through this one structure, which is the contention IDYLL removes.

use sim_engine::queue::BoundedQueue;
use sim_engine::resource::ThreadPool;
use sim_engine::stats::Accumulator;
use sim_engine::Cycle;
use vm_model::addr::Vpn;
use vm_model::page_table::PageTable;
use vm_model::pwc::PageWalkCache;
use vm_model::walker::{walk_invalidate, walk_translate, WalkResult, WalkerConfig};

/// Why a walk was requested. The class drives both statistics (Figure 5's
/// request mix) and semantics (invalidations clear the leaf valid bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WalkClass {
    /// A demand TLB miss performing address translation.
    Demand,
    /// A migration-induced PTE invalidation (baseline path).
    Invalidation,
    /// A batched IRMB write-back invalidation (IDYLL path).
    IrmbWriteback,
    /// A driver-sent PTE update installing a new mapping.
    Update,
}

impl WalkClass {
    /// Whether this walk clears the leaf valid bit.
    pub fn is_invalidation(self) -> bool {
        matches!(self, WalkClass::Invalidation | WalkClass::IrmbWriteback)
    }
}

/// A queued walk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkRequest {
    /// Page to walk.
    pub vpn: Vpn,
    /// Request class.
    pub class: WalkClass,
    /// Opaque token for the system layer to resume the requester.
    pub token: u64,
    /// When the request entered the queue.
    pub enqueued_at: Cycle,
}

/// A dispatched walk: the request, its timing and semantic outcome.
#[derive(Debug, Clone, Copy)]
pub struct DispatchedWalk {
    /// The originating request.
    pub request: WalkRequest,
    /// Timing and leaf outcome.
    pub result: WalkResult,
    /// For invalidation classes: whether a valid PTE was actually cleared
    /// (the paper's necessary/unnecessary split, Figure 5).
    pub necessary: Option<bool>,
    /// Absolute completion time.
    pub finish_at: Cycle,
    /// Time spent waiting in the page-walk queue.
    pub queued_for: Cycle,
}

/// Per-class walk statistics.
#[derive(Debug, Clone, Default)]
pub struct WalkClassStats {
    /// Completed walks.
    pub count: u64,
    /// Walk latency (excluding queue time).
    pub walk_latency: Accumulator,
    /// Queue waiting time.
    pub queue_latency: Accumulator,
    /// PWC hits among these walks.
    pub pwc_hits: u64,
}

/// The GMMU.
///
/// # Example
///
/// ```
/// use gpu_model::gmmu::{Gmmu, GmmuConfig, WalkClass};
/// use vm_model::page_table::PageTable;
/// use vm_model::{PageSize, Vpn, Pte};
/// use sim_engine::Cycle;
///
/// let mut pt = PageTable::new(PageSize::Size4K);
/// pt.insert(Vpn(5), Pte::new_mapped(1, true));
/// let mut gmmu = Gmmu::new(GmmuConfig::default());
/// gmmu.enqueue(Vpn(5), WalkClass::Demand, 0, Cycle(0)).unwrap();
/// let walk = gmmu.try_dispatch(Cycle(0), &mut pt).unwrap();
/// assert!(walk.result.outcome.mapped().is_some());
/// ```
#[derive(Debug)]
pub struct Gmmu {
    queue: BoundedQueue<WalkRequest>,
    walkers: ThreadPool,
    pwc: PageWalkCache,
    walker_cfg: WalkerConfig,
    demand: WalkClassStats,
    invalidation: WalkClassStats,
    irmb_writeback: WalkClassStats,
    update: WalkClassStats,
}

/// GMMU configuration (Table 2 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GmmuConfig {
    /// Page-walk queue entries (64).
    pub walk_queue_entries: usize,
    /// Walker threads (8; §7.2 sweeps 16 and 32).
    pub walker_threads: usize,
    /// Page-walk cache entries (128, shared).
    pub pwc_entries: usize,
    /// Radix levels of the local page table (5 for 4 KiB pages).
    pub levels: u32,
    /// Per-level walk latency (100 cycles).
    pub walker: WalkerConfig,
}

impl Default for GmmuConfig {
    fn default() -> Self {
        GmmuConfig {
            walk_queue_entries: 64,
            walker_threads: 8,
            pwc_entries: 128,
            levels: 5,
            walker: WalkerConfig::default(),
        }
    }
}

impl Gmmu {
    /// Creates a GMMU.
    pub fn new(cfg: GmmuConfig) -> Self {
        Gmmu {
            queue: BoundedQueue::new(cfg.walk_queue_entries),
            walkers: ThreadPool::new(cfg.walker_threads),
            pwc: PageWalkCache::new(cfg.pwc_entries, cfg.levels),
            walker_cfg: cfg.walker,
            demand: WalkClassStats::default(),
            invalidation: WalkClassStats::default(),
            irmb_writeback: WalkClassStats::default(),
            update: WalkClassStats::default(),
        }
    }

    /// Enqueues a walk request.
    ///
    /// # Errors
    /// Returns the request back when the page-walk queue is full
    /// (back-pressure: the caller must retry later).
    pub fn enqueue(
        &mut self,
        vpn: Vpn,
        class: WalkClass,
        token: u64,
        now: Cycle,
    ) -> Result<(), WalkRequest> {
        self.queue.push(WalkRequest {
            vpn,
            class,
            token,
            enqueued_at: now,
        })
    }

    /// Attempts to start the next queued walk at time `now` against the
    /// GPU's local page table. Returns `None` when the queue is empty or all
    /// walker threads are busy (use [`Gmmu::next_walker_free`] to know when
    /// to retry).
    pub fn try_dispatch(&mut self, now: Cycle, pt: &mut PageTable) -> Option<DispatchedWalk> {
        if !self.walkers.has_free(now) {
            return None;
        }
        let request = self.queue.pop()?;
        let (result, necessary) = if request.class.is_invalidation() {
            let (r, n) = walk_invalidate(pt, &mut self.pwc, request.vpn, self.walker_cfg);
            (r, Some(n))
        } else {
            (
                walk_translate(pt, &mut self.pwc, request.vpn, self.walker_cfg),
                None,
            )
        };
        self.walkers
            .try_acquire(now, result.latency)
            // simlint: allow(hot-path-panic) — has_free(now) held above; acquiring at `now` cannot fail
            .expect("checked has_free");
        let queued_for = now.saturating_sub(request.enqueued_at);
        let stats = self.stats_mut(request.class);
        stats.count += 1;
        stats.walk_latency.record_cycles(result.latency);
        stats.queue_latency.record_cycles(queued_for);
        if result.pwc_hit {
            stats.pwc_hits += 1;
        }
        Some(DispatchedWalk {
            request,
            result,
            necessary,
            finish_at: now + result.latency,
            queued_for,
        })
    }

    /// Whether a dispatch could start right now.
    pub fn can_dispatch(&self, now: Cycle) -> bool {
        !self.queue.is_empty() && self.walkers.has_free(now)
    }

    /// The earliest cycle a walker thread frees up.
    pub fn next_walker_free(&self) -> Cycle {
        self.walkers.earliest_free()
    }

    /// Whether the GMMU is completely idle (empty queue and, at `now`, at
    /// least one free walker) — the IRMB's opportunistic-drain condition.
    pub fn is_idle(&self, now: Cycle) -> bool {
        self.queue.is_empty() && self.walkers.available(now) == self.walkers.size()
    }

    /// Queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Free queue slots.
    pub fn queue_free(&self) -> usize {
        self.queue.free()
    }

    /// Rejected enqueues (queue-full back-pressure events).
    pub fn queue_rejections(&self) -> u64 {
        self.queue.rejected()
    }

    /// Shared page-walk cache (for hit-rate reporting).
    pub fn pwc(&self) -> &PageWalkCache {
        &self.pwc
    }

    /// Per-class statistics.
    pub fn stats(&self, class: WalkClass) -> &WalkClassStats {
        match class {
            WalkClass::Demand => &self.demand,
            WalkClass::Invalidation => &self.invalidation,
            WalkClass::IrmbWriteback => &self.irmb_writeback,
            WalkClass::Update => &self.update,
        }
    }

    fn stats_mut(&mut self, class: WalkClass) -> &mut WalkClassStats {
        match class {
            WalkClass::Demand => &mut self.demand,
            WalkClass::Invalidation => &mut self.invalidation,
            WalkClass::IrmbWriteback => &mut self.irmb_writeback,
            WalkClass::Update => &mut self.update,
        }
    }

    /// Total busy walker cycles (utilisation numerator).
    pub fn walker_busy_cycles(&self) -> u64 {
        self.walkers.busy_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_model::addr::PageSize;
    use vm_model::pte::Pte;

    fn pt_with(vpns: &[u64]) -> PageTable {
        let mut pt = PageTable::new(PageSize::Size4K);
        for &v in vpns {
            pt.insert(Vpn(v), Pte::new_mapped(v + 1, true));
        }
        pt
    }

    #[test]
    fn demand_walk_translates() {
        let mut pt = pt_with(&[5]);
        let mut g = Gmmu::new(GmmuConfig::default());
        g.enqueue(Vpn(5), WalkClass::Demand, 7, Cycle(0)).unwrap();
        let w = g.try_dispatch(Cycle(0), &mut pt).unwrap();
        assert_eq!(w.request.token, 7);
        assert_eq!(w.result.mem_accesses, 5);
        assert_eq!(w.finish_at, Cycle(500));
        assert_eq!(w.necessary, None);
        assert!(
            pt.lookup(Vpn(5)).unwrap().is_valid(),
            "translate is read-only"
        );
        assert_eq!(g.stats(WalkClass::Demand).count, 1);
    }

    #[test]
    fn invalidation_walk_clears_and_classifies() {
        let mut pt = pt_with(&[5]);
        let mut g = Gmmu::new(GmmuConfig::default());
        g.enqueue(Vpn(5), WalkClass::Invalidation, 0, Cycle(0))
            .unwrap();
        g.enqueue(Vpn(5), WalkClass::Invalidation, 1, Cycle(0))
            .unwrap();
        let w1 = g.try_dispatch(Cycle(0), &mut pt).unwrap();
        assert_eq!(w1.necessary, Some(true));
        assert!(!pt.lookup(Vpn(5)).unwrap().is_valid());
        let w2 = g.try_dispatch(Cycle(0), &mut pt).unwrap();
        assert_eq!(w2.necessary, Some(false), "already invalid: unnecessary");
        assert_eq!(g.stats(WalkClass::Invalidation).count, 2);
    }

    #[test]
    fn walker_threads_limit_concurrency() {
        let mut pt = pt_with(&[1, 2, 3]);
        let mut g = Gmmu::new(GmmuConfig {
            walker_threads: 2,
            ..GmmuConfig::default()
        });
        for (i, v) in [1u64, 2, 3].iter().enumerate() {
            g.enqueue(Vpn(*v), WalkClass::Demand, i as u64, Cycle(0))
                .unwrap();
        }
        assert!(g.try_dispatch(Cycle(0), &mut pt).is_some());
        assert!(g.try_dispatch(Cycle(0), &mut pt).is_some());
        assert!(
            g.try_dispatch(Cycle(0), &mut pt).is_none(),
            "both walkers busy"
        );
        assert_eq!(g.queue_len(), 1);
        let free_at = g.next_walker_free();
        assert!(g.try_dispatch(free_at, &mut pt).is_some());
    }

    #[test]
    fn queue_backpressure() {
        let mut g = Gmmu::new(GmmuConfig {
            walk_queue_entries: 1,
            ..GmmuConfig::default()
        });
        g.enqueue(Vpn(1), WalkClass::Demand, 0, Cycle(0)).unwrap();
        let rejected = g.enqueue(Vpn(2), WalkClass::Demand, 1, Cycle(0));
        assert!(rejected.is_err());
        assert_eq!(g.queue_rejections(), 1);
    }

    #[test]
    fn queue_latency_is_tracked() {
        let mut pt = pt_with(&[1]);
        let mut g = Gmmu::new(GmmuConfig::default());
        g.enqueue(Vpn(1), WalkClass::Demand, 0, Cycle(100)).unwrap();
        let w = g.try_dispatch(Cycle(160), &mut pt).unwrap();
        assert_eq!(w.queued_for, Cycle(60));
        assert_eq!(g.stats(WalkClass::Demand).queue_latency.mean(), Some(60.0));
    }

    #[test]
    fn idle_detection() {
        let mut pt = pt_with(&[1]);
        let mut g = Gmmu::new(GmmuConfig::default());
        assert!(g.is_idle(Cycle(0)));
        g.enqueue(Vpn(1), WalkClass::Demand, 0, Cycle(0)).unwrap();
        assert!(!g.is_idle(Cycle(0)));
        let w = g.try_dispatch(Cycle(0), &mut pt).unwrap();
        assert!(!g.is_idle(Cycle(0)), "walker busy");
        assert!(g.is_idle(w.finish_at));
    }

    #[test]
    fn update_walks_do_not_invalidate() {
        let mut pt = pt_with(&[9]);
        let mut g = Gmmu::new(GmmuConfig::default());
        g.enqueue(Vpn(9), WalkClass::Update, 0, Cycle(0)).unwrap();
        let w = g.try_dispatch(Cycle(0), &mut pt).unwrap();
        assert_eq!(w.necessary, None);
        assert!(pt.lookup(Vpn(9)).unwrap().is_valid());
        assert_eq!(g.stats(WalkClass::Update).count, 1);
    }

    #[test]
    fn irmb_writeback_batches_amortise_pwc() {
        // Two write-backs sharing a base: the second hits the PWC.
        let mut pt = pt_with(&[0x200, 0x201]);
        let mut g = Gmmu::new(GmmuConfig::default());
        g.enqueue(Vpn(0x200), WalkClass::IrmbWriteback, 0, Cycle(0))
            .unwrap();
        g.enqueue(Vpn(0x201), WalkClass::IrmbWriteback, 1, Cycle(0))
            .unwrap();
        let w1 = g.try_dispatch(Cycle(0), &mut pt).unwrap();
        let w2 = g.try_dispatch(Cycle(0), &mut pt).unwrap();
        assert_eq!(w1.result.mem_accesses, 5);
        assert_eq!(w2.result.mem_accesses, 1, "batched walk hits PWC");
        assert_eq!(g.stats(WalkClass::IrmbWriteback).pwc_hits, 1);
    }
}
