//! Compute units and warps — the latency-hiding model.
//!
//! GPU cores hide memory latency by switching among concurrent warps. The
//! model keeps that essential behaviour and nothing more: each CU runs a
//! fixed set of warps; a warp alternates `compute_gap` cycles of compute
//! with one memory access and blocks while the access is outstanding; a CU
//! issues at most one memory access per cycle across its ready warps.
//!
//! Memory-intensive workloads (many accesses, small gaps) exhaust the warp
//! supply and expose translation latency — which is exactly when the paper
//! finds invalidation contention hurts most (the IM discussion in §7.1).

use sim_engine::Cycle;

/// State of one warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Will be ready to issue its next access at the given cycle.
    Ready(Cycle),
    /// Blocked on an outstanding memory access.
    WaitingMem,
    /// Exhausted its share of the trace.
    Done,
}

/// One warp.
#[derive(Debug, Clone, Copy)]
pub struct Warp {
    /// Current state.
    pub state: WarpState,
    /// Accesses issued so far.
    pub issued: u64,
}

/// A compute unit: a set of warps plus a 1-access/cycle issue port.
///
/// # Example
///
/// ```
/// use gpu_model::cu::{Cu, WarpState};
/// use sim_engine::Cycle;
///
/// let mut cu = Cu::new(2);
/// assert!(cu.try_issue_port(Cycle(5)));
/// assert!(!cu.try_issue_port(Cycle(5)), "one issue per cycle");
/// assert!(cu.try_issue_port(Cycle(6)));
/// ```
#[derive(Debug, Clone)]
pub struct Cu {
    warps: Vec<Warp>,
    last_issue: Option<Cycle>,
    issued_total: u64,
}

impl Cu {
    /// Creates a CU with `warps` warps, all ready at cycle 0.
    ///
    /// # Panics
    /// Panics if `warps == 0`.
    pub fn new(warps: usize) -> Self {
        assert!(warps > 0, "a CU needs at least one warp");
        Cu {
            warps: vec![
                Warp {
                    state: WarpState::Ready(Cycle::ZERO),
                    issued: 0,
                };
                warps
            ],
            last_issue: None,
            issued_total: 0,
        }
    }

    /// Number of warps.
    pub fn warps(&self) -> usize {
        self.warps.len()
    }

    /// Borrow a warp's state.
    pub fn warp(&self, w: usize) -> &Warp {
        &self.warps[w]
    }

    /// Claims the issue port for cycle `now`. Returns `false` when another
    /// warp already issued this cycle.
    pub fn try_issue_port(&mut self, now: Cycle) -> bool {
        if self.last_issue == Some(now) {
            return false;
        }
        self.last_issue = Some(now);
        true
    }

    /// Marks warp `w` as having issued a memory access (now blocked).
    ///
    /// # Panics
    /// Panics if the warp is not in `Ready` state.
    pub fn issue(&mut self, w: usize) {
        let warp = &mut self.warps[w];
        assert!(
            matches!(warp.state, WarpState::Ready(_)),
            "issuing from a non-ready warp"
        );
        warp.state = WarpState::WaitingMem;
        warp.issued += 1;
        self.issued_total += 1;
    }

    /// Completes warp `w`'s outstanding access: it becomes ready again at
    /// `now + compute_gap` (the compute instructions between accesses).
    pub fn complete_access(&mut self, w: usize, now: Cycle, compute_gap: Cycle) -> Cycle {
        let warp = &mut self.warps[w];
        debug_assert_eq!(warp.state, WarpState::WaitingMem);
        let ready_at = now + compute_gap;
        warp.state = WarpState::Ready(ready_at);
        ready_at
    }

    /// Retires warp `w` (no more trace accesses for it).
    pub fn retire(&mut self, w: usize) {
        self.warps[w].state = WarpState::Done;
    }

    /// Whether every warp has retired.
    pub fn all_done(&self) -> bool {
        self.warps.iter().all(|w| w.state == WarpState::Done)
    }

    /// Total accesses issued by this CU.
    pub fn issued_total(&self) -> u64 {
        self.issued_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_lifecycle() {
        let mut cu = Cu::new(1);
        assert_eq!(cu.warp(0).state, WarpState::Ready(Cycle::ZERO));
        cu.issue(0);
        assert_eq!(cu.warp(0).state, WarpState::WaitingMem);
        let ready = cu.complete_access(0, Cycle(100), Cycle(7));
        assert_eq!(ready, Cycle(107));
        assert_eq!(cu.warp(0).state, WarpState::Ready(Cycle(107)));
        cu.retire(0);
        assert!(cu.all_done());
        assert_eq!(cu.issued_total(), 1);
    }

    #[test]
    fn issue_port_is_one_per_cycle() {
        let mut cu = Cu::new(4);
        assert!(cu.try_issue_port(Cycle(10)));
        assert!(!cu.try_issue_port(Cycle(10)));
        assert!(cu.try_issue_port(Cycle(11)));
        // Port claims don't need to be monotone (events can arrive from a
        // heap in equal-time batches), but equal cycles are still refused.
        assert!(!cu.try_issue_port(Cycle(11)));
    }

    #[test]
    fn all_done_requires_every_warp() {
        let mut cu = Cu::new(2);
        cu.retire(0);
        assert!(!cu.all_done());
        cu.retire(1);
        assert!(cu.all_done());
    }

    #[test]
    #[should_panic(expected = "non-ready warp")]
    fn double_issue_panics() {
        let mut cu = Cu::new(1);
        cu.issue(0);
        cu.issue(0);
    }
}
