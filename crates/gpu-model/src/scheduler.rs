//! CTA (thread-block) scheduling policies: how a GPU's access trace is
//! dealt to its warps.
//!
//! The paper's methodology (§4) uses round-robin CTA scheduling for CUs
//! within a GPU and greedy (locality-preserving) scheduling across GPUs.
//! In the trace-driven model that choice appears as the mapping from the
//! per-GPU access stream to per-warp work: contiguous segments preserve
//! intra-CTA locality (greedy), while interleaving approximates fine-grain
//! round-robin dispatch.

/// How the per-GPU trace is partitioned across warps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CtaSchedule {
    /// Each warp owns one contiguous trace segment (a thread block covering
    /// its own data tile) — the paper's locality-preserving default.
    #[default]
    BlockContiguous,
    /// Accesses are dealt round-robin across warps (fine-grain interleave;
    /// destroys per-warp locality, stressing the TLBs harder).
    RoundRobin,
    /// Contiguous blocks of the given size are dealt round-robin (a middle
    /// ground: per-block locality, global balance).
    BlockCyclic(usize),
}

/// A warp's work list: indices into the GPU trace, in issue order.
pub type WarpPlan = Vec<usize>;

/// Builds the per-warp access plans for a trace of `len` accesses dealt to
/// `warps` warps under `schedule`.
///
/// Every index in `0..len` appears in exactly one plan exactly once.
///
/// # Panics
/// Panics if `warps == 0` or a `BlockCyclic` size of zero is given.
///
/// # Example
///
/// ```
/// use gpu_model::scheduler::{plan_warps, CtaSchedule};
/// let plans = plan_warps(10, 2, CtaSchedule::RoundRobin);
/// assert_eq!(plans[0], vec![0, 2, 4, 6, 8]);
/// assert_eq!(plans[1], vec![1, 3, 5, 7, 9]);
/// ```
pub fn plan_warps(len: usize, warps: usize, schedule: CtaSchedule) -> Vec<WarpPlan> {
    assert!(warps > 0, "need at least one warp");
    let mut plans: Vec<WarpPlan> = (0..warps).map(|_| Vec::new()).collect();
    match schedule {
        CtaSchedule::BlockContiguous => {
            let seg = len.div_ceil(warps);
            for (w, plan) in plans.iter_mut().enumerate() {
                let start = (w * seg).min(len);
                let end = ((w + 1) * seg).min(len);
                *plan = (start..end).collect();
            }
        }
        CtaSchedule::RoundRobin => {
            for i in 0..len {
                plans[i % warps].push(i);
            }
        }
        CtaSchedule::BlockCyclic(block) => {
            assert!(block > 0, "block size must be positive");
            for (b, chunk_start) in (0..len).step_by(block).enumerate() {
                let w = b % warps;
                let end = (chunk_start + block).min(len);
                plans[w].extend(chunk_start..end);
            }
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(plans: &[WarpPlan], len: usize) {
        let mut seen = vec![false; len];
        for plan in plans {
            for &i in plan {
                assert!(i < len);
                assert!(!seen[i], "index {i} dealt twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some index never dealt");
    }

    #[test]
    fn contiguous_segments_partition_and_preserve_order() {
        let plans = plan_warps(103, 8, CtaSchedule::BlockContiguous);
        assert_partition(&plans, 103);
        for plan in &plans {
            for pair in plan.windows(2) {
                assert_eq!(pair[1], pair[0] + 1, "contiguity broken");
            }
        }
    }

    #[test]
    fn round_robin_partitions_evenly() {
        let plans = plan_warps(100, 4, CtaSchedule::RoundRobin);
        assert_partition(&plans, 100);
        assert!(plans.iter().all(|p| p.len() == 25));
    }

    #[test]
    fn block_cyclic_partitions_with_block_locality() {
        let plans = plan_warps(64, 2, CtaSchedule::BlockCyclic(8));
        assert_partition(&plans, 64);
        // Warp 0 gets blocks 0, 2, 4, 6.
        assert_eq!(&plans[0][..8], &(0..8).collect::<Vec<_>>()[..]);
        assert_eq!(&plans[0][8..16], &(16..24).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn degenerate_shapes() {
        assert_partition(&plan_warps(0, 4, CtaSchedule::BlockContiguous), 0);
        assert_partition(&plan_warps(3, 8, CtaSchedule::BlockContiguous), 3);
        assert_partition(&plan_warps(3, 8, CtaSchedule::RoundRobin), 3);
        assert_partition(&plan_warps(5, 1, CtaSchedule::BlockCyclic(2)), 5);
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn zero_warps_panics() {
        plan_warps(10, 0, CtaSchedule::RoundRobin);
    }
}
