//! One GPU: compute units, TLB hierarchy, GMMU, fault buffer and data path.

use mem_model::cache::{Cache, CacheGeometry};
use mem_model::dram::Dram;
use mem_model::interconnect::GpuId;
use mem_model::mshr::Mshr;
use sim_engine::queue::BoundedQueue;
use sim_engine::Cycle;
use uvm_driver::fault::FarFault;
use vm_model::addr::{PageSize, Vpn};
use vm_model::page_table::PageTable;
use vm_model::tlb::{Tlb, TlbConfig};

use crate::cu::Cu;
use crate::gmmu::{Gmmu, GmmuConfig};

/// Full per-GPU configuration (Table 2 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Compute units per GPU (64).
    pub cus: usize,
    /// Warps per CU contributing memory-level parallelism.
    pub warps_per_cu: usize,
    /// Per-CU L1 TLB.
    pub l1_tlb: TlbConfig,
    /// Shared L2 TLB.
    pub l2_tlb: TlbConfig,
    /// Shared L2-TLB MSHR entries (page-granular merge).
    pub l2_mshr_entries: usize,
    /// GMMU parameters.
    pub gmmu: GmmuConfig,
    /// GPU fault buffer entries.
    pub fault_buffer_entries: usize,
    /// L2 data cache geometry (256 KiB, 16-way).
    pub l2_cache: CacheGeometry,
    /// Device DRAM banks.
    pub dram_banks: usize,
    /// Device DRAM latency.
    pub dram_latency: Cycle,
    /// Device DRAM per-access bank occupancy (cycles).
    pub dram_occupancy: u64,
    /// L1 data-cache hit latency.
    pub l1_hit_latency: Cycle,
    /// L2 data-cache hit latency.
    pub l2_hit_latency: Cycle,
    /// Page size translated by this GPU's page table.
    pub page_size: PageSize,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            cus: 64,
            warps_per_cu: 4,
            l1_tlb: TlbConfig::baseline_l1(),
            l2_tlb: TlbConfig::baseline_l2(),
            l2_mshr_entries: 64,
            gmmu: GmmuConfig::default(),
            fault_buffer_entries: 4096,
            l2_cache: CacheGeometry::new(256 * 1024, 16, 64),
            dram_banks: 32,
            dram_latency: Cycle(200),
            dram_occupancy: 4,
            l1_hit_latency: Cycle(4),
            l2_hit_latency: Cycle(24),
            page_size: PageSize::Size4K,
        }
    }
}

/// One GPU's architectural state.
///
/// # Example
///
/// ```
/// use gpu_model::gpu::{Gpu, GpuConfig};
/// use vm_model::{Vpn, Pte};
///
/// let mut gpu = Gpu::new(0, GpuConfig { cus: 2, ..GpuConfig::default() });
/// gpu.l1_tlbs[0].fill(Vpn(1), Pte::new_mapped(5, true));
/// gpu.l2_tlb.fill(Vpn(1), Pte::new_mapped(5, true));
/// assert_eq!(gpu.shootdown(Vpn(1)), 2); // both levels dropped the entry
/// ```
#[derive(Debug)]
pub struct Gpu {
    /// This GPU's id.
    pub id: GpuId,
    /// Per-CU compute state.
    pub cus: Vec<Cu>,
    /// Per-CU private L1 TLBs.
    pub l1_tlbs: Vec<Tlb>,
    /// Shared L2 TLB.
    pub l2_tlb: Tlb,
    /// Shared L2-TLB MSHR, keyed by VPN, holding request tokens.
    pub l2_mshr: Mshr<u64>,
    /// The GPU's local page table (remote mappings included).
    pub page_table: PageTable,
    /// The GMMU.
    pub gmmu: Gmmu,
    /// GPU fault buffer holding far faults awaiting driver pickup.
    pub fault_buffer: BoundedQueue<FarFault>,
    /// Shared L2 data cache.
    pub l2_cache: Cache,
    /// Device memory.
    pub dram: Dram,
    config: GpuConfig,
}

impl Gpu {
    /// Creates GPU `id` from `config`.
    pub fn new(id: GpuId, config: GpuConfig) -> Self {
        Gpu {
            id,
            cus: (0..config.cus)
                .map(|_| Cu::new(config.warps_per_cu))
                .collect(),
            l1_tlbs: (0..config.cus).map(|_| Tlb::new(config.l1_tlb)).collect(),
            l2_tlb: Tlb::new(config.l2_tlb),
            l2_mshr: Mshr::new(config.l2_mshr_entries),
            page_table: PageTable::new(config.page_size),
            gmmu: Gmmu::new(config.gmmu),
            fault_buffer: BoundedQueue::new(config.fault_buffer_entries),
            l2_cache: Cache::new(config.l2_cache),
            dram: Dram::new(
                config.dram_banks,
                config.dram_latency,
                config.dram_occupancy,
            ),
            config,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// TLB shootdown for one VPN across the whole hierarchy (performed
    /// *immediately* on invalidation receipt in both the baseline and
    /// IDYLL, §6.3 correctness). Returns how many TLB entries were dropped.
    pub fn shootdown(&mut self, vpn: Vpn) -> usize {
        let mut dropped = 0;
        for tlb in &mut self.l1_tlbs {
            if tlb.shootdown(vpn) {
                dropped += 1;
            }
        }
        if self.l2_tlb.shootdown(vpn) {
            dropped += 1;
        }
        dropped
    }

    /// Local data-access latency: L2 cache hit or DRAM, starting at `now`
    /// after the (per-CU modelled) L1 miss. `paddr` is the physical byte
    /// address.
    pub fn local_data_latency(&mut self, now: Cycle, paddr: u64) -> Cycle {
        if self.l2_cache.access(paddr) {
            self.config.l2_hit_latency
        } else {
            let done = self
                .dram
                .access(now + self.config.l2_hit_latency.raw(), paddr);
            (done + self.config.l2_hit_latency.raw()).saturating_sub(now)
        }
    }

    /// Remote-read service latency at this (owner) GPU: the paper routes
    /// remote data straight from DRAM to the requester without caching it in
    /// the remote hierarchy (§3.2), so this is a pure DRAM access.
    pub fn serve_remote_latency(&mut self, now: Cycle, paddr: u64) -> Cycle {
        self.dram.access(now, paddr).saturating_sub(now)
    }

    /// Drops all cached data lines of a page that is migrating away.
    pub fn drop_page_lines(&mut self, page_base_paddr: u64) -> usize {
        self.l2_cache
            .invalidate_page(page_base_paddr, self.config.page_size.bytes())
    }

    /// Whether every CU has retired all warps.
    pub fn all_done(&self) -> bool {
        self.cus.iter().all(|cu| cu.all_done())
    }

    /// Total memory accesses issued by this GPU.
    pub fn accesses_issued(&self) -> u64 {
        self.cus.iter().map(|cu| cu.issued_total()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_model::pte::Pte;

    fn small_gpu() -> Gpu {
        Gpu::new(
            0,
            GpuConfig {
                cus: 2,
                warps_per_cu: 2,
                ..GpuConfig::default()
            },
        )
    }

    #[test]
    fn construction_matches_config() {
        let gpu = small_gpu();
        assert_eq!(gpu.cus.len(), 2);
        assert_eq!(gpu.l1_tlbs.len(), 2);
        assert_eq!(gpu.l2_tlb.config().entries, 512);
        assert_eq!(gpu.page_table.page_size(), PageSize::Size4K);
    }

    #[test]
    fn shootdown_hits_all_levels() {
        let mut gpu = small_gpu();
        let pte = Pte::new_mapped(9, true);
        gpu.l1_tlbs[0].fill(Vpn(1), pte);
        gpu.l1_tlbs[1].fill(Vpn(1), pte);
        gpu.l2_tlb.fill(Vpn(1), pte);
        assert_eq!(gpu.shootdown(Vpn(1)), 3);
        assert_eq!(gpu.shootdown(Vpn(1)), 0, "idempotent");
    }

    #[test]
    fn local_data_latency_cache_vs_dram() {
        let mut gpu = small_gpu();
        let cold = gpu.local_data_latency(Cycle(0), 0x1000);
        let warm = gpu.local_data_latency(Cycle(1000), 0x1000);
        assert!(cold > warm, "DRAM access slower than L2 hit");
        assert_eq!(warm, Cycle(24));
    }

    #[test]
    fn migrating_page_lines_are_dropped() {
        let mut gpu = small_gpu();
        gpu.local_data_latency(Cycle(0), 0x2000);
        gpu.local_data_latency(Cycle(0), 0x2040);
        assert_eq!(gpu.drop_page_lines(0x2000), 2);
    }

    #[test]
    fn completion_tracking() {
        let mut gpu = small_gpu();
        assert!(!gpu.all_done());
        for cu in &mut gpu.cus {
            for w in 0..cu.warps() {
                cu.retire(w);
            }
        }
        assert!(gpu.all_done());
    }
}
