//! Process-wide recorder for grid-run throughput (ROADMAP: surface per-run
//! wall-clock and events-per-second from the `all_figures` fan-out).
//!
//! Every grid the [`Harness`](crate::Harness) runs appends one
//! [`RunRecord`] per job via [`record`]. The `all_figures` binary drains the
//! recorder at the end into a [`MetricsRegistry`] JSON export
//! (`results/grid_metrics.json`) so host-side simulation throughput can be
//! tracked across commits alongside the figure outputs.
//!
//! Wall-clock numbers are host measurements and intentionally live outside
//! the simulation: they never feed model state, and the determinism suite
//! does not cover them (two runs of the same grid legitimately differ here).

// Event counts are far below 2^52, so u64 → f64 throughput math is exact
// enough for human-facing reporting.

use std::sync::Mutex;

use mgpu_system::runner::TimedRun;
use sim_engine::metrics::MetricsRegistry;

/// Host-side cost of one completed grid job.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Job label with the internal `\u{1}` app/scheme separator replaced by
    /// `.` so it is printable and JSON-friendly (e.g. `KM.idyll`).
    pub label: String,
    /// Wall-clock seconds the job took on its worker thread.
    pub wall_secs: f64,
    /// Simulation events the job processed.
    pub events: u64,
}

impl RunRecord {
    /// Events per host second (0 for a zero-length run).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

static RECORDS: Mutex<Vec<RunRecord>> = Mutex::new(Vec::new());

// Lock poisoning cannot corrupt the Vec (pushes are atomic enough for a
// best-effort recorder), so all three accessors just take the data back.
fn lock() -> std::sync::MutexGuard<'static, Vec<RunRecord>> {
    RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Appends one record per timed run to the process-wide recorder.
pub fn record(runs: &[TimedRun]) {
    let mut records = lock();
    for run in runs {
        records.push(RunRecord {
            label: run.scheme.replace('\u{1}', "."),
            wall_secs: run.wall_secs,
            events: run.report.events_processed,
        });
    }
}

/// Clears the recorder (tests and long-lived processes starting a new batch).
pub fn clear() {
    lock().clear();
}

/// A copy of everything recorded so far, in completion-batch order.
#[must_use]
pub fn snapshot() -> Vec<RunRecord> {
    lock().clone()
}

/// Version of the `results/grid_metrics.json` layout; bump when the shape
/// of the export changes so downstream tooling can detect old files.
pub const SCHEMA_VERSION: u64 = 2;

/// Renders the recorder into a registry: aggregate totals under `grid.*`
/// plus per-run entries under `grid.run.<index>.*` (indexed, not
/// label-keyed, because the same app/scheme pair can run in several grids).
///
/// `generated_at_unix_secs` is stamped into the export by the caller — this
/// library deliberately never reads the wall clock itself, so the simlint
/// wall-clock rule holds here without an allow.
#[must_use]
pub fn registry(generated_at_unix_secs: u64) -> MetricsRegistry {
    let records = snapshot();
    let mut reg = MetricsRegistry::new();
    let total_secs: f64 = records.iter().map(|r| r.wall_secs).sum();
    let total_events: u64 = records.iter().map(|r| r.events).sum();
    reg.count("grid.schema_version", SCHEMA_VERSION);
    reg.count("grid.generated_at_unix_secs", generated_at_unix_secs);
    reg.count("grid.runs", records.len() as u64);
    reg.gauge("grid.wall_secs", total_secs);
    reg.count("grid.events", total_events);
    reg.gauge(
        "grid.events_per_sec",
        if total_secs > 0.0 {
            total_events as f64 / total_secs
        } else {
            0.0
        },
    );
    for (i, r) in records.iter().enumerate() {
        let mut scope = reg.scope(format!("grid.run.{i:04}.{}", r.label));
        scope.gauge("wall_secs", r.wall_secs);
        scope.count("events", r.events);
        scope.gauge("events_per_sec", r.events_per_sec());
    }
    reg
}

/// One-line human summary for stderr (`all_figures` prints it after the
/// figure loop). Empty string when nothing was recorded.
#[must_use]
pub fn summary_line() -> String {
    let records = snapshot();
    if records.is_empty() {
        return String::new();
    }
    let total_secs: f64 = records.iter().map(|r| r.wall_secs).sum();
    let total_events: u64 = records.iter().map(|r| r.events).sum();
    let eps = if total_secs > 0.0 {
        total_events as f64 / total_secs
    } else {
        0.0
    };
    format!(
        "grid throughput: {} runs, {total_events} events in {total_secs:.2}s of worker time ({eps:.0} events/s)",
        records.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_system::SimReport;

    fn timed(label: &str, secs: f64, events: u64) -> TimedRun {
        TimedRun {
            scheme: label.to_string(),
            report: SimReport {
                events_processed: events,
                ..Default::default()
            },
            wall_secs: secs,
            profile: None,
        }
    }

    // The recorder is process-global and other bench tests run grids in
    // parallel, so assertions are containment/≥-style, never exact counts.
    #[test]
    fn record_sanitizes_labels_and_registry_exports_them() {
        record(&[
            timed("KM\u{1}idyll", 2.0, 1000),
            timed("BS\u{1}base", 0.0, 7),
        ]);
        let snap = snapshot();
        assert!(snap
            .iter()
            .any(|r| r.label == "KM.idyll" && r.events == 1000));
        assert!(
            snap.iter().all(|r| !r.label.contains('\u{1}')),
            "labels must be sanitized"
        );
        let zero = snap
            .iter()
            .find(|r| r.label == "BS.base")
            .expect("recorded");
        assert!(
            zero.events_per_sec().abs() < 1e-12,
            "zero wall time must not divide"
        );
        let json = registry(1_700_000_000).to_json();
        assert!(json.contains("\"grid.schema_version\""));
        assert!(json.contains("\"grid.generated_at_unix_secs\": 1700000000"));
        assert!(json.contains("\"grid.runs\""));
        assert!(json.contains("\"grid.events_per_sec\""));
        assert!(json.contains("KM.idyll.wall_secs"));
        assert!(!summary_line().is_empty());
    }
}
