//! Regenerates the paper's fig01 (see DESIGN.md per-experiment index).

use idyll_bench::{Harness, HarnessConfig};

fn main() {
    let h = Harness::new(HarnessConfig::from_env());
    match h.fig01() {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    }
}
