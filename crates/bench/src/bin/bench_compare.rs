//! CI perf-regression gate: diff a fresh `perf_micro`-style measurement
//! against the committed `BENCH_baseline.json`.
//!
//! ```text
//! bench_compare                          # compare against BENCH_baseline.json
//! bench_compare --iters 2               # fewer best-of iterations
//! bench_compare --baseline other.json   # compare against another record
//! ```
//!
//! Two classes of drift, two severities:
//!
//! * **event counts** are deterministic functions of `(scale, seed,
//!   config)`. Any mismatch against the baseline means the simulation
//!   changed; that is either an intended model change (refresh the baseline
//!   with `perf_micro --json --out BENCH_baseline.json` and say why in the
//!   commit) or a regression. Hard failure, exit 1.
//! * **wall-clock** is a host measurement. Slowdowns beyond the noise
//!   threshold are reported as warnings but never fail the gate — CI
//!   machines are too noisy for hard wall-clock gates; the uploaded
//!   `BENCH_*.json` artifacts carry the trajectory for humans to read.
//!
//! The gate refuses to compare records measured at a different scale or
//! seed: event counts would legitimately differ and the diff would be
//! meaningless.

use idyll_bench::bench_record::{measure_all, BenchRecord, HostInfo, SCHEMA};
use idyll_bench::HarnessConfig;

/// Relative wall-clock slowdown beyond which a warning is printed. Generous
/// because CI runners share cores; the event-count gate is the hard one.
const WALL_WARN_FRAC: f64 = 0.30;

fn main() {
    let mut iters = 3usize;
    let mut baseline_path = String::from("BENCH_baseline.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--iters" => {
                iters = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --iters requires a number");
                    std::process::exit(2);
                })
            }
            "--baseline" => {
                baseline_path = it.next().unwrap_or_else(|| {
                    eprintln!("error: --baseline requires a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "error: unknown option `{other}` \
                     (supported: --iters <N>, --baseline <path>)"
                );
                std::process::exit(2);
            }
        }
    }
    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = BenchRecord::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: {baseline_path}: {e}");
        std::process::exit(2);
    });
    let hc = HarnessConfig::from_env();
    let scale = format!("{:?}", hc.scale);
    if baseline.scale != scale || baseline.seed != hc.seed {
        eprintln!(
            "bench_compare: baseline was measured at scale={} seed={} but this run \
             is scale={scale} seed={} — set IDYLL_SCALE/IDYLL_SEED to match or \
             refresh the baseline",
            baseline.scale, baseline.seed, hc.seed
        );
        std::process::exit(2);
    }
    println!(
        "bench_compare: scale={scale} seed={} iters={iters} baseline={baseline_path} \
         (baseline host: {}/{} {} cpus; this host: {}/{} {} cpus)",
        hc.seed,
        baseline.host.os,
        baseline.host.arch,
        baseline.host.cpus,
        HostInfo::current().os,
        HostInfo::current().arch,
        HostInfo::current().cpus,
    );
    let fresh = measure_all(&hc, iters).unwrap_or_else(|e| {
        eprintln!("bench_compare: {e}");
        std::process::exit(1);
    });
    let mut failures = 0usize;
    let mut warnings = 0usize;
    println!(
        "{:<30} {:>14} {:>14} {:>11} {:>9}",
        "config", "base events", "events", "wall Δ%", "verdict"
    );
    for f in &fresh {
        let Some(b) = baseline.configs.iter().find(|b| b.label == f.label) else {
            println!(
                "{:<30} {:>14} {:>14} {:>11} {:>9}",
                f.label, "-", f.events, "-", "NEW"
            );
            continue;
        };
        let wall_delta = if b.best_wall_secs > 0.0 {
            f.best_wall_secs / b.best_wall_secs - 1.0
        } else {
            0.0
        };
        let verdict = if f.events != b.events {
            failures += 1;
            "FAIL"
        } else if wall_delta > WALL_WARN_FRAC {
            warnings += 1;
            "SLOW"
        } else {
            "ok"
        };
        println!(
            "{:<30} {:>14} {:>14} {:>+10.1}% {:>9}",
            f.label,
            b.events,
            f.events,
            wall_delta * 100.0,
            verdict
        );
    }
    for b in &baseline.configs {
        if !fresh.iter().any(|f| f.label == b.label) {
            eprintln!(
                "bench_compare: baseline config `{}` was not measured",
                b.label
            );
            failures += 1;
        }
    }
    if warnings > 0 {
        eprintln!(
            "bench_compare: {warnings} config(s) slower than baseline by more than \
             {:.0}% (report-only: wall-clock never fails the gate)",
            WALL_WARN_FRAC * 100.0
        );
    }
    if failures > 0 {
        eprintln!(
            "bench_compare: {failures} hard failure(s): event counts drifted from \
             {baseline_path} (schema {SCHEMA}). If the simulation change is intended, \
             refresh the baseline: perf_micro --json --out BENCH_baseline.json"
        );
        std::process::exit(1);
    }
    println!("bench_compare: event counts match the baseline");
}
