//! CI perf-regression gate: diff a fresh `perf_micro`-style measurement
//! against the committed `BENCH_baseline.json`.
//!
//! ```text
//! bench_compare                          # compare against BENCH_baseline.json
//! bench_compare --iters 2               # fewer best-of iterations
//! bench_compare --baseline other.json   # compare against another record
//! bench_compare --threads 4             # event-lane workers per simulation
//! ```
//!
//! Event counts are byte-identical for any `--threads` value, so the hard
//! gate is meaningful at every thread count; wall-clock deltas against a
//! baseline recorded at a different thread count are reported but
//! explicitly labelled apples-to-oranges.
//!
//! Two classes of drift, two severities:
//!
//! * **event counts** are deterministic functions of `(scale, seed,
//!   config)`. Any mismatch against the baseline means the simulation
//!   changed; that is either an intended model change (refresh the baseline
//!   with `perf_micro --json --out BENCH_baseline.json` and say why in the
//!   commit) or a regression. Hard failure, exit 1.
//! * **wall-clock** is a host measurement. Slowdowns beyond the noise
//!   threshold are reported as warnings but never fail the gate — CI
//!   machines are too noisy for hard wall-clock gates; the uploaded
//!   `BENCH_*.json` artifacts carry the trajectory for humans to read.
//!
//! The gate refuses to compare records measured at a different scale or
//! seed: event counts would legitimately differ and the diff would be
//! meaningless.

use idyll_bench::bench_record::{measure_all, BenchRecord, HostInfo, SCHEMA};
use idyll_bench::HarnessConfig;

/// Relative wall-clock slowdown beyond which a warning is printed. Generous
/// because CI runners share cores; the event-count gate is the hard one.
const WALL_WARN_FRAC: f64 = 0.30;

fn main() {
    let mut iters = 3usize;
    let mut baseline_path = String::from("BENCH_baseline.json");
    let mut threads: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--iters" => {
                iters = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --iters requires a number");
                    std::process::exit(2);
                })
            }
            "--baseline" => {
                baseline_path = it.next().unwrap_or_else(|| {
                    eprintln!("error: --baseline requires a path");
                    std::process::exit(2);
                })
            }
            "--threads" => {
                threads = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --threads requires a number");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!(
                    "error: unknown option `{other}` \
                     (supported: --iters <N>, --baseline <path>, --threads <N>)"
                );
                std::process::exit(2);
            }
        }
    }
    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = BenchRecord::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: {baseline_path}: {e}");
        std::process::exit(2);
    });
    let mut hc = HarnessConfig::from_env();
    if let Some(t) = threads {
        hc.sim_threads = t;
    }
    let scale = format!("{:?}", hc.scale);
    // Attribute each mismatched knob to its side: the baseline record on
    // disk vs this fresh run's environment. Event counts would
    // legitimately differ across scale/seed, so the diff would be
    // meaningless noise, not a verdict.
    let mut mismatches = Vec::new();
    if baseline.scale != scale {
        mismatches.push(format!(
            "scale: baseline {baseline_path} has `{}`, fresh run (IDYLL_SCALE) has `{scale}`",
            baseline.scale
        ));
    }
    if baseline.seed != hc.seed {
        mismatches.push(format!(
            "seed: baseline {baseline_path} has {}, fresh run (IDYLL_SEED) has {}",
            baseline.seed, hc.seed
        ));
    }
    if !mismatches.is_empty() {
        eprintln!(
            "bench_compare: refusing to compare records measured under different \
             conditions:"
        );
        for m in &mismatches {
            eprintln!("bench_compare:   {m}");
        }
        eprintln!(
            "bench_compare: set IDYLL_SCALE/IDYLL_SEED to match the baseline or \
             refresh it: perf_micro --json --out {baseline_path}"
        );
        std::process::exit(2);
    }
    let fresh_threads = hc.sim_threads.max(1) as u64;
    println!(
        "bench_compare: scale={scale} seed={} iters={iters} threads={fresh_threads} \
         baseline={baseline_path} (baseline host: {}/{} {} cpus; this host: {}/{} {} cpus)",
        hc.seed,
        baseline.host.os,
        baseline.host.arch,
        baseline.host.cpus,
        HostInfo::current().os,
        HostInfo::current().arch,
        HostInfo::current().cpus,
    );
    if baseline.threads != fresh_threads {
        println!(
            "bench_compare: note: baseline ran threads={}, this run threads={fresh_threads}; \
             event counts still compare exactly (deterministic for any thread count) but \
             wall-clock deltas are apples-to-oranges",
            baseline.threads
        );
    }
    let fresh = measure_all(&hc, iters).unwrap_or_else(|e| {
        eprintln!("bench_compare: {e}");
        std::process::exit(1);
    });
    let mut failures = 0usize;
    let mut warnings = 0usize;
    println!(
        "{:<30} {:>14} {:>14} {:>11} {:>9}",
        "config", "base events", "events", "wall Δ%", "verdict"
    );
    for f in &fresh {
        let Some(b) = baseline.configs.iter().find(|b| b.label == f.label) else {
            println!(
                "{:<30} {:>14} {:>14} {:>11} {:>9}",
                f.label, "-", f.events, "-", "NEW"
            );
            continue;
        };
        let wall_delta = if b.best_wall_secs > 0.0 {
            f.best_wall_secs / b.best_wall_secs - 1.0
        } else {
            0.0
        };
        let verdict = if f.events != b.events {
            failures += 1;
            "FAIL"
        } else if wall_delta > WALL_WARN_FRAC {
            warnings += 1;
            "SLOW"
        } else {
            "ok"
        };
        println!(
            "{:<30} {:>14} {:>14} {:>+10.1}% {:>9}",
            f.label,
            b.events,
            f.events,
            wall_delta * 100.0,
            verdict
        );
    }
    for b in &baseline.configs {
        if !fresh.iter().any(|f| f.label == b.label) {
            eprintln!(
                "bench_compare: baseline config `{}` was not measured",
                b.label
            );
            failures += 1;
        }
    }
    if warnings > 0 {
        eprintln!(
            "bench_compare: {warnings} config(s) slower than baseline by more than \
             {:.0}% (report-only: wall-clock never fails the gate)",
            WALL_WARN_FRAC * 100.0
        );
    }
    if failures > 0 {
        eprintln!(
            "bench_compare: {failures} hard failure(s): event counts drifted from \
             {baseline_path} (schema {SCHEMA}). If the simulation change is intended, \
             refresh the baseline: perf_micro --json --out BENCH_baseline.json"
        );
        std::process::exit(1);
    }
    println!("bench_compare: event counts match the baseline");
}
