//! Regenerates every table and figure in the paper's evaluation, writing
//! each to `results/<id>.txt` and echoing to stdout.
//!
//! ```text
//! all_figures                         # every figure
//! all_figures --only fig11           # one figure
//! all_figures --trace t.json --metrics-json m.json
//!     # additionally perform one instrumented reference run (IDYLL, KM)
//!     # and write its Perfetto timeline / metrics registry
//! ```

use idyll_bench::{all_figures, grid_metrics, Harness, HarnessConfig};
use mgpu_system::System;
use sim_engine::trace::Tracer;
use workloads::{AppId, WorkloadSpec};

struct Args {
    only: Option<String>,
    trace_out: Option<String>,
    trace_filter: Option<String>,
    metrics_json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        only: None,
        trace_out: None,
        trace_filter: None,
        metrics_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--only" => args.only = Some(value("--only")),
            "--trace" => args.trace_out = Some(value("--trace")),
            "--trace-filter" => args.trace_filter = Some(value("--trace-filter")),
            "--metrics-json" => args.metrics_json = Some(value("--metrics-json")),
            other => {
                eprintln!(
                    "error: unknown option `{other}` (supported: --only <fig>, \
                     --trace <file>, --trace-filter <cats>, --metrics-json <file>)"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// One fully instrumented reference run (IDYLL scheme, KM workload, 4 GPUs
/// at the harness scale) whose timeline and metrics registry are written
/// alongside the figures.
fn observed_run(h: &Harness, args: &Args) {
    let cfg = h.idyll(4);
    let spec = WorkloadSpec::paper_default(AppId::Km, h.config().scale);
    let wl = workloads::generate(&spec, cfg.n_gpus, h.config().seed);
    let mut sys = System::new(cfg, &wl);
    match args.trace_filter.as_deref() {
        Some(f) => sys.set_tracer(Tracer::with_filter(f)),
        None => sys.set_tracer(Tracer::enabled()),
    }
    if let Err(e) = sys.run() {
        eprintln!("observed reference run failed: {e}");
        std::process::exit(1);
    }
    if let Some(path) = &args.trace_out {
        std::fs::write(path, sys.tracer().to_chrome_json()).expect("write trace JSON");
        eprintln!(
            "wrote {path} ({} trace events; open at ui.perfetto.dev)",
            sys.tracer().len()
        );
    }
    if let Some(path) = &args.metrics_json {
        std::fs::write(path, sys.metrics_registry().to_json()).expect("write metrics JSON");
        eprintln!("wrote {path} ({} metrics)", sys.metrics_registry().len());
    }
}

fn main() {
    let args = parse_args();
    let h = Harness::new(HarnessConfig::from_env());
    if args.trace_out.is_some() || args.metrics_json.is_some() {
        observed_run(&h, &args);
    }
    std::fs::create_dir_all("results").expect("create results dir");
    let mut failures = 0;
    let mut matched = false;
    for (id, figure) in all_figures() {
        if let Some(only) = &args.only {
            if id != only {
                continue;
            }
        }
        matched = true;
        eprintln!("[{id}] running…");
        match figure(&h) {
            Ok(out) => {
                println!("{out}");
                std::fs::write(format!("results/{id}.txt"), &out).expect("write result");
            }
            Err(e) => {
                eprintln!("{id}: simulation failed: {e}");
                failures += 1;
            }
        }
    }
    if let Some(only) = &args.only {
        if !matched {
            eprintln!("error: no figure named `{only}`");
            failures += 1;
        }
    }
    // Host-side throughput of everything the figures just ran (ROADMAP:
    // per-run wall-clock + events/s from the fan-out).
    let summary = grid_metrics::summary_line();
    if !summary.is_empty() {
        // The timestamp is supplied here at the binary edge so the
        // grid_metrics library itself stays free of wall-clock reads.
        let generated_at = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        std::fs::write(
            "results/grid_metrics.json",
            grid_metrics::registry(generated_at).to_json(),
        )
        .expect("write grid metrics JSON");
        eprintln!("{summary}");
        eprintln!("wrote results/grid_metrics.json");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
