//! Regenerates every table and figure in the paper's evaluation, writing
//! each to `results/<id>.txt` and echoing to stdout.

use idyll_bench::{all_figures, Harness, HarnessConfig};

fn main() {
    let h = Harness::new(HarnessConfig::from_env());
    std::fs::create_dir_all("results").expect("create results dir");
    let mut failures = 0;
    for (id, figure) in all_figures() {
        eprintln!("[{id}] running…");
        match figure(&h) {
            Ok(out) => {
                println!("{out}");
                std::fs::write(format!("results/{id}.txt"), &out).expect("write result");
            }
            Err(e) => {
                eprintln!("{id}: simulation failed: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
