//! Regenerates the paper's fig24 (see DESIGN.md per-experiment index).

use idyll_bench::{Harness, HarnessConfig};

fn main() {
    let h = Harness::new(HarnessConfig::from_env());
    match h.fig24() {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    }
}
