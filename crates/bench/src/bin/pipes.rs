//! Debug: run one workload and dump interconnect pipe stats mid-run.
use mgpu_system::config::SystemConfig;
use workloads::{AppId, Scale, WorkloadSpec};

fn main() {
    let app = AppId::Mt;
    let spec = WorkloadSpec::paper_default(app, Scale::Small);
    let mut cfg = SystemConfig::baseline(4);
    cfg.policy = uvm_driver::policy::MigrationPolicy::AccessCounter {
        threshold: Scale::Small.counter_threshold(),
    };
    let wl = workloads::generate(&spec, 4, 42);
    let mut sys = mgpu_system::System::new(cfg, &wl);
    let (report, pipes) = sys.run_with_pipes().unwrap();
    println!(
        "exec={} remote_mean={:.0}",
        report.exec_cycles,
        report.remote_data_latency.mean().unwrap_or(0.0)
    );
    for (label, n, bytes, free) in pipes {
        println!("{label:>10}: transfers={n:>8} bytes={bytes:>12} next_free={free}");
    }
}
