//! Wall-clock micro harness for the observability overhead budget.
//!
//! Runs a fig11-class configuration (baseline and IDYLL, 2 GPUs, SC) with
//! the tracer disabled and enabled, reporting per-config wall-clock, the
//! disabled-tracer overhead, and the per-phase self-profile. The disabled
//! case must stay within a few percent of the seed build — every
//! instrumentation site reduces to one branch when no tracer or profiler is
//! installed.
//!
//! ```text
//! perf_micro --iters 5          # default 3
//! perf_micro --json             # also write BENCH_<seq>.json
//! perf_micro --json --out BENCH_baseline.json   # refresh the baseline
//! perf_micro --threads 4        # event-lane workers per simulation
//! IDYLL_SCALE=small perf_micro  # heavier traces (default: small)
//! ```
//!
//! The `--json` record is the versioned perf-trajectory format
//! `bench_compare` gates CI on; see `idyll_bench::bench_record`.

use std::path::PathBuf;

use idyll_bench::bench_record::{measure_all, next_seq, BenchRecord, HostInfo, SCHEMA};
use idyll_bench::HarnessConfig;

fn main() {
    let mut iters = 3usize;
    let mut json = false;
    let mut out: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--iters" => {
                iters = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --iters requires a number");
                    std::process::exit(2);
                })
            }
            "--json" => json = true,
            "--out" => {
                out = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                })))
            }
            "--threads" => {
                threads = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --threads requires a number");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!(
                    "error: unknown option `{other}` \
                     (supported: --iters <N>, --json, --out <path>, --threads <N>)"
                );
                std::process::exit(2);
            }
        }
    }
    if out.is_some() && !json {
        eprintln!("error: --out only makes sense with --json");
        std::process::exit(2);
    }
    let mut hc = HarnessConfig::from_env();
    if let Some(t) = threads {
        hc.sim_threads = t;
    }
    println!(
        "perf_micro: scale={:?} seed={} iters={iters} threads={}",
        hc.scale,
        hc.seed,
        hc.sim_threads.max(1)
    );
    let configs = measure_all(&hc, iters).unwrap_or_else(|e| {
        eprintln!("perf_micro: {e}");
        std::process::exit(1);
    });
    println!(
        "{:<30} {:>12} {:>12} {:>12}",
        "config", "events", "best (ms)", "Mev/s"
    );
    for c in &configs {
        println!(
            "{:<30} {:>12} {:>12.2} {:>12.2}",
            c.label,
            c.events,
            c.best_wall_secs * 1e3,
            c.events_per_sec() / 1e6
        );
    }
    // Pairs are emitted (tracer off, tracer on) per configuration; report
    // the enabled-tracer overhead and the per-phase profile for each.
    for pair in configs.chunks(2) {
        let [off, on] = pair else { continue };
        let base = off.label.trim_end_matches(" tracer off");
        println!(
            "{:<30} tracing overhead when enabled: {:+.1}%",
            base,
            (on.best_wall_secs / off.best_wall_secs - 1.0) * 100.0
        );
        if !off.profile.is_empty() {
            println!("{base} self-profile (separate profiled run):");
            let total: u64 = off.profile.iter().map(|p| p.nanos).sum::<u64>().max(1);
            for p in &off.profile {
                println!(
                    "  {:<14} {:>12} {:>12.3} ms {:>6.1}%",
                    p.phase,
                    p.count,
                    p.nanos as f64 / 1e6,
                    p.nanos as f64 / total as f64 * 100.0
                );
            }
        }
    }
    if json {
        let dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let seq = next_seq(&dir);
        let path = out.unwrap_or_else(|| dir.join(format!("BENCH_{seq}.json")));
        let record = BenchRecord {
            schema: SCHEMA.to_string(),
            seq,
            scale: format!("{:?}", hc.scale),
            seed: hc.seed,
            iters: iters as u64,
            threads: hc.sim_threads.max(1) as u64,
            host: HostInfo::current(),
            configs,
        };
        if let Err(e) = std::fs::write(&path, record.to_json() + "\n") {
            eprintln!("perf_micro: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
}
