//! Wall-clock micro harness for the observability overhead budget.
//!
//! Runs a fig11-class configuration (baseline and IDYLL, 2 GPUs, SC) with
//! the tracer disabled and enabled, reporting per-config wall-clock and the
//! disabled-tracer overhead. The disabled case must stay within a few
//! percent of the seed build — every instrumentation site reduces to one
//! branch when no tracer is installed.
//!
//! ```text
//! perf_micro --iters 5          # default 3
//! IDYLL_SCALE=small perf_micro  # heavier traces (default: test)
//! ```

use std::time::Instant;

use idyll_bench::HarnessConfig;
use mgpu_system::config::SystemConfig;
use mgpu_system::System;
use sim_engine::trace::Tracer;
use uvm_driver::policy::MigrationPolicy;
use workloads::{AppId, WorkloadSpec};

fn run_once(hc: &HarnessConfig, idyll: bool, traced: bool) -> (f64, u64) {
    let mut cfg = if idyll {
        SystemConfig::idyll(2)
    } else {
        SystemConfig::baseline(2)
    };
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: hc.scale.counter_threshold(),
    };
    cfg.seed = hc.seed;
    let spec = WorkloadSpec::paper_default(AppId::Sc, hc.scale);
    let wl = workloads::generate(&spec, 2, hc.seed);
    let mut sys = System::new(cfg, &wl);
    if traced {
        sys.set_tracer(Tracer::enabled());
    }
    let start = Instant::now();
    let report = sys.run().expect("simulation completes");
    (start.elapsed().as_secs_f64(), report.events_processed)
}

/// Best-of-N wall-clock (minimum is the least noisy estimator for
/// throughput micro-measurements).
fn measure(hc: &HarnessConfig, idyll: bool, traced: bool, iters: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..iters {
        let (t, n) = run_once(hc, idyll, traced);
        best = best.min(t);
        events = n;
    }
    (best, events)
}

fn main() {
    let mut iters = 3usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--iters" => {
                iters = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --iters requires a number");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("error: unknown option `{other}` (supported: --iters <N>)");
                std::process::exit(2);
            }
        }
    }
    let hc = HarnessConfig::from_env();
    println!(
        "perf_micro: scale={:?} seed={} iters={iters}",
        hc.scale, hc.seed
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "config", "events", "best (ms)", "Mev/s"
    );
    for (label, idyll) in [("baseline/SC/2gpu", false), ("idyll/SC/2gpu", true)] {
        // Warm-up run so allocator/page-cache effects don't pollute either
        // measurement.
        let _ = run_once(&hc, idyll, false);
        let (off, events) = measure(&hc, idyll, false, iters);
        let (on, _) = measure(&hc, idyll, true, iters);
        for (mode, secs) in [("tracer off", off), ("tracer on", on)] {
            println!(
                "{:<22} {:>12} {:>12.2} {:>12.2}",
                format!("{label} {mode}"),
                events,
                secs * 1e3,
                events as f64 / secs / 1e6
            );
        }
        println!(
            "{:<22} tracing overhead when enabled: {:+.1}%",
            label,
            (on / off - 1.0) * 100.0
        );
    }
}
