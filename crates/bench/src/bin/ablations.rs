//! Ablations of IDYLL's individual design choices (DESIGN.md calls these
//! out; the paper motivates each in §6.3):
//!
//! 1. IRMB merged-entry replacement: LRU (paper) vs FIFO;
//! 2. the IRMB-hit walk bypass (§6.3 lookup scenario 3) on vs off;
//! 3. fault-driven prefetching (UVM driver extension) interaction.

use idyll_bench::{Harness, HarnessConfig};
use idyll_core::irmb::{IrmbConfig, IrmbReplacement};
use mgpu_system::config::IdyllConfig;
use mgpu_system::runner::{format_table, run_jobs, Job};
use workloads::{AppId, WorkloadSpec};

fn main() {
    let h = Harness::new(HarnessConfig::from_env());
    let cfg = h.config();
    let apps = [AppId::Mm, AppId::Pr, AppId::Km, AppId::Im, AppId::Bs];

    let mut fifo = h.idyll(4);
    fifo.idyll = Some(IdyllConfig {
        irmb: IrmbConfig::default().with_replacement(IrmbReplacement::Fifo),
        ..IdyllConfig::full()
    });
    let mut no_bypass = h.idyll(4);
    no_bypass.idyll = Some(IdyllConfig {
        bypass_on_irmb_hit: false,
        ..IdyllConfig::full()
    });
    let schemes = [
        ("base", h.baseline(4)),
        ("idyll", h.idyll(4)),
        ("fifo", fifo),
        ("no-bypass", no_bypass),
    ];

    let mut jobs = Vec::new();
    for app in apps {
        let spec = WorkloadSpec::paper_default(app, cfg.scale);
        for (name, sys) in &schemes {
            jobs.push(Job {
                scheme: format!("{app}\u{1}{name}"),
                config: sys.clone(),
                workload: workloads::generate(&spec, 4, cfg.seed),
            });
        }
    }
    let results = run_jobs(jobs, cfg.threads).expect("simulations complete");
    let mut grid: std::collections::BTreeMap<String, std::collections::BTreeMap<String, _>> =
        Default::default();
    for (key, r) in results {
        let (app, scheme) = key.split_once('\u{1}').expect("composite");
        grid.entry(app.into())
            .or_default()
            .insert(scheme.to_string(), r);
    }
    let rows: Vec<(&str, Vec<f64>)> = apps
        .iter()
        .map(|app| {
            let per = &grid[app.name()];
            let base = &per["base"];
            (
                app.name(),
                vec![
                    per["idyll"].speedup_vs(base),
                    per["fifo"].speedup_vs(base),
                    per["no-bypass"].speedup_vs(base),
                ],
            )
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Ablations: IDYLL design choices (speedup vs baseline)",
            &["idyll (LRU+bypass)", "FIFO IRMB", "no walk bypass"],
            &rows,
            3,
        )
    );
}
