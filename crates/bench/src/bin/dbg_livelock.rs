//! Debug: reproduce the on-touch/replication runaway and dump state.
use mgpu_system::config::SystemConfig;
use uvm_driver::policy::MigrationPolicy;
use workloads::{AppId, Scale, WorkloadSpec};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "ontouch".into());
    let mut cfg = SystemConfig::test(2);
    match mode.as_str() {
        "repl" => {
            cfg = SystemConfig::test(4);
            cfg.replication = true;
            cfg.policy = MigrationPolicy::AccessCounter { threshold: 4 };
        }
        _ => {
            cfg.policy = MigrationPolicy::OnTouch;
        }
    }
    cfg.max_events = 2_000_000;
    let app = if mode == "repl" { AppId::Mt } else { AppId::Sc };
    let spec = WorkloadSpec::paper_default(app, Scale::Test);
    let wl = workloads::generate(&spec, cfg.n_gpus, 42);
    let mut sys = mgpu_system::System::new(cfg, &wl);
    // Keep a flight-recorder tail so a livelock dump shows how we got there.
    sys.enable_trace_log(512);
    match sys.run_debug() {
        Ok(r) => println!(
            "completed: {} cycles, {} events",
            r.exec_cycles, r.events_processed
        ),
        Err((e, diag)) => println!("FAILED: {e}\n{diag}"),
    }
}
