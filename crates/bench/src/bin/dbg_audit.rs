//! Debug: reproduce coherence-audit failures.
use mgpu_system::config::{IdyllConfig, SystemConfig};
use uvm_driver::policy::MigrationPolicy;
use workloads::{AppId, Scale, WorkloadSpec};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "repl".into());
    let mut cfg = SystemConfig::test(4);
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    let app = match mode.as_str() {
        "repl" => {
            cfg.replication = true;
            AppId::Mt
        }
        "transfw" => {
            cfg.transfw = Some(idyll_core::transfw::TransFwConfig::default());
            AppId::St
        }
        "combined" => {
            cfg.transfw = Some(idyll_core::transfw::TransFwConfig::default());
            cfg.idyll = Some(IdyllConfig::full());
            AppId::St
        }
        "scale16" => {
            cfg = SystemConfig::baseline(n);
            cfg.policy = MigrationPolicy::AccessCounter {
                threshold: Scale::Small.counter_threshold(),
            };
            match std::env::args().nth(3).as_deref() {
                Some("MT") => AppId::Mt,
                Some("PR") => AppId::Pr,
                Some("KM") => AppId::Km,
                Some("BS") => AppId::Bs,
                Some("IM") => AppId::Im,
                Some("ST") => AppId::St,
                Some("SC") => AppId::Sc,
                Some("C2D") => AppId::C2d,
                _ => AppId::Mm,
            }
        }
        _ => AppId::Pr,
    };
    let scale = if mode == "scale16" {
        Scale::Small
    } else {
        Scale::Test
    };
    let spec = WorkloadSpec::paper_default(app, scale);
    let wl = workloads::generate(&spec, cfg.n_gpus, 42);
    let mut sys = mgpu_system::System::new(cfg, &wl);
    // Keep a flight-recorder tail so an audit failure dump shows the
    // protocol history leading up to it.
    sys.enable_trace_log(512);
    match sys.run_debug() {
        Ok(r) => println!(
            "stale={} migrations={} accesses={}",
            r.stale_translations, r.migrations, r.accesses
        ),
        Err((e, d)) => println!("FAILED {e}\n{d}"),
    }
}
