//! Scratch probe: compare schemes on small workloads (development aid).

use mgpu_system::config::SystemConfig;
use mgpu_system::runner::{run_jobs, Job};
use workloads::{AppId, Scale, WorkloadSpec};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        _ => Scale::Test,
    };
    let n = 4;
    let threshold = scale.counter_threshold();
    let policy = uvm_driver::policy::MigrationPolicy::AccessCounter { threshold };
    let mut base = SystemConfig::baseline(n);
    base.policy = policy;
    let mut idyll = SystemConfig::idyll(n);
    idyll.policy = policy;
    let mut zero = base.clone();
    zero.zero_latency_invalidation = true;
    let schemes = [
        ("baseline".to_string(), base),
        ("idyll".to_string(), idyll),
        ("zerolat".to_string(), zero),
    ];
    for app in AppId::ALL {
        let spec = WorkloadSpec::paper_default(app, scale);
        let wl = workloads::generate(&spec, n, 42);
        let jobs: Vec<Job> = schemes
            .iter()
            .map(|(name, cfg)| Job {
                scheme: name.clone(),
                config: cfg.clone(),
                workload: wl.clone(),
            })
            .collect();
        match run_jobs(jobs, 3) {
            Ok(results) => {
                let base = results[0].1.exec_cycles as f64;
                print!("{:<4}", app.name());
                for (name, r) in &results {
                    print!(
                        "  {}={:>9} ({:>5.2}x) mpki={:>6.1} inv={:>6} mig={:>4} ff={:>6} dml={:>6.0}",
                        name,
                        r.exec_cycles,
                        base / r.exec_cycles as f64,
                        r.mpki(),
                        r.invalidation_messages,
                        r.migrations,
                        r.far_faults,
                        r.demand_miss_latency.mean().unwrap_or(0.0),
                    );
                }
                println!();
                for (name, r) in &results {
                    println!(
                        "      {name}: mig_wait={:.0} mig_total={:.0} inv_lat={:.0} dml_sum={:.2e} irmb_byp={} evs={:.1e}",
                        r.migration_waiting.mean().unwrap_or(0.0),
                        r.migration_total.mean().unwrap_or(0.0),
                        r.invalidation_latency.mean().unwrap_or(0.0),
                        r.demand_miss_latency.sum(),
                        r.irmb_bypasses,
                        r.events_processed as f64,
                    );
                    println!(
                        "        acc_lat mean={:.0} max={:.0}  remote mean={:.0} n={}",
                        r.access_latency.mean().unwrap_or(0.0),
                        r.access_latency.max().unwrap_or(0.0),
                        r.remote_data_latency.mean().unwrap_or(0.0),
                        r.remote_data_latency.count(),
                    );
                }
                let b = &results[0].1;
                println!(
                    "      mix: demand={} nec={} unnec={} inv_share={:.2} unnec_share={:.2} share_dist={:?}",
                    b.walker_mix.demand,
                    b.walker_mix.invalidation_necessary,
                    b.walker_mix.invalidation_unnecessary,
                    b.walker_mix.invalidation_share(),
                    b.walker_mix.unnecessary_share(),
                    b.sharing_distribution.iter().map(|v| (v * 100.0).round()).collect::<Vec<_>>(),
                );
            }
            Err(e) => println!("{:<4} ERROR: {e}", app.name()),
        }
    }
}
