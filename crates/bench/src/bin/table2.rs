//! Regenerates the paper's table2 (see DESIGN.md per-experiment index).

use idyll_bench::{Harness, HarnessConfig};

fn main() {
    let h = Harness::new(HarnessConfig::from_env());
    println!("{}", h.table2());
}
