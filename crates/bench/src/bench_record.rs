//! Versioned BENCH records: the machine-readable perf trajectory.
//!
//! `perf_micro --json` serialises one [`BenchRecord`] per invocation into
//! `BENCH_<seq>.json`; the committed `BENCH_baseline.json` is the reference
//! the `bench_compare` binary diffs fresh runs against. The schema is
//! versioned (see [`SCHEMA`]) so readers can reject records from a future
//! shape instead of misinterpreting them.
//!
//! A record separates two kinds of numbers:
//!
//! * **event counts** — deterministic functions of `(scale, seed, config)`;
//!   any drift against the baseline is a simulation change and hard-fails
//!   the compare gate;
//! * **wall-clock / throughput** — host measurements; the gate only warns
//!   on these, with noise-aware relative thresholds.
//!
//! The shared [`measure_all`] harness is what both binaries run: per
//! configuration it takes a warm-up run, best-of-N wall times with the
//! tracer off and on (asserting the event count never moves between
//! iterations), and one profiled run for the per-phase breakdown.

use std::path::Path;

use idyll_serve::json::Json;
use mgpu_system::config::SystemConfig;
use mgpu_system::system::SimError;
use mgpu_system::System;
use sim_engine::prof::Profiler;
use sim_engine::trace::Tracer;
use uvm_driver::policy::MigrationPolicy;
use workloads::{AppId, WorkloadSpec};

use crate::HarnessConfig;

/// Schema tag every record carries; bump when the shape changes.
///
/// v2 added the `threads` field (event-lane workers per simulation). v1
/// records are still readable — `threads` defaults to 1, which is what
/// every v1 writer effectively ran. Unknown *fields* in a record are
/// ignored (forward compatibility); unknown *schemas* are rejected.
pub const SCHEMA: &str = "idyll-bench v2";

/// The previous schema tag [`BenchRecord::parse`] still accepts.
pub const SCHEMA_V1: &str = "idyll-bench v1";

/// One phase row of a per-phase self-profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseProfile {
    /// [`sim_engine::prof::Phase::name`] token.
    pub phase: String,
    /// Emissions charged to the phase.
    pub count: u64,
    /// Host nanoseconds charged to the phase.
    pub nanos: u64,
}

/// The measured result for one benchmark configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigResult {
    /// Configuration label, e.g. `baseline/SC/2gpu tracer off`.
    pub label: String,
    /// Simulation events processed (identical across iterations by
    /// construction; deterministic given scale/seed/config).
    pub events: u64,
    /// Best-of-N wall seconds (minimum is the least noisy estimator).
    pub best_wall_secs: f64,
    /// Per-phase self-profile from a separate profiled run; empty for
    /// configurations that were not profiled.
    pub profile: Vec<PhaseProfile>,
}

impl ConfigResult {
    /// Events per host second at the best wall time.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.best_wall_secs > 0.0 {
            self.events as f64 / self.best_wall_secs
        } else {
            0.0
        }
    }
}

/// Host fingerprint recorded for context when comparing wall-clock numbers
/// across machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism (0 when the host will not say).
    pub cpus: u64,
}

impl HostInfo {
    /// The current host's fingerprint.
    #[must_use]
    pub fn current() -> HostInfo {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
        }
    }
}

/// One schema-versioned BENCH record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// [`SCHEMA`] of the writer.
    pub schema: String,
    /// Sequence number (the `<seq>` in `BENCH_<seq>.json`).
    pub seq: u64,
    /// Harness scale token (`Test`/`Small`/`Full`).
    pub scale: String,
    /// Workload seed.
    pub seed: u64,
    /// Best-of-N iteration count.
    pub iters: u64,
    /// Event-lane worker threads each simulation ran with. Event counts
    /// are identical for any value (the parallel core is deterministic);
    /// wall-clock comparisons across different thread counts are
    /// apples-to-oranges, so the compare gate surfaces this field.
    pub threads: u64,
    /// Host fingerprint.
    pub host: HostInfo,
    /// Per-configuration measurements.
    pub configs: Vec<ConfigResult>,
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl BenchRecord {
    /// Serialises the record as a single-line JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let configs = self
            .configs
            .iter()
            .map(|c| {
                let profile = c
                    .profile
                    .iter()
                    .map(|p| {
                        obj(vec![
                            ("phase", Json::str(&p.phase)),
                            ("count", Json::u64(p.count)),
                            ("nanos", Json::u64(p.nanos)),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("label", Json::str(&c.label)),
                    ("events", Json::u64(c.events)),
                    ("best_wall_secs", Json::f64(c.best_wall_secs)),
                    ("events_per_sec", Json::f64(c.events_per_sec())),
                    ("profile", Json::Arr(profile)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", Json::str(&self.schema)),
            ("seq", Json::u64(self.seq)),
            ("scale", Json::str(&self.scale)),
            ("seed", Json::u64(self.seed)),
            ("iters", Json::u64(self.iters)),
            ("threads", Json::u64(self.threads)),
            (
                "host",
                obj(vec![
                    ("os", Json::str(&self.host.os)),
                    ("arch", Json::str(&self.host.arch)),
                    ("cpus", Json::u64(self.host.cpus)),
                ]),
            ),
            ("configs", Json::Arr(configs)),
        ])
        .encode()
    }

    /// Parses a record, rejecting unknown schema versions.
    ///
    /// # Errors
    /// A human-readable message on malformed input or a schema mismatch.
    pub fn parse(text: &str) -> Result<BenchRecord, String> {
        let doc = Json::parse(text)?;
        let need_str = |v: &Json, key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let need_u64 = |v: &Json, key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field `{key}`"))
        };
        let schema = need_str(&doc, "schema")?;
        if schema != SCHEMA && schema != SCHEMA_V1 {
            return Err(format!(
                "unsupported BENCH schema `{schema}` (this build reads `{SCHEMA}` \
                 and `{SCHEMA_V1}`)"
            ));
        }
        let host_doc = doc.get("host").ok_or("missing object field `host`")?;
        let host = HostInfo {
            os: need_str(host_doc, "os")?,
            arch: need_str(host_doc, "arch")?,
            cpus: need_u64(host_doc, "cpus")?,
        };
        let mut configs = Vec::new();
        for c in doc
            .get("configs")
            .and_then(Json::as_arr)
            .ok_or("missing array field `configs`")?
        {
            let mut profile = Vec::new();
            for p in c
                .get("profile")
                .and_then(Json::as_arr)
                .ok_or("missing array field `profile`")?
            {
                profile.push(PhaseProfile {
                    phase: need_str(p, "phase")?,
                    count: need_u64(p, "count")?,
                    nanos: need_u64(p, "nanos")?,
                });
            }
            configs.push(ConfigResult {
                label: need_str(c, "label")?,
                events: need_u64(c, "events")?,
                best_wall_secs: c
                    .get("best_wall_secs")
                    .and_then(Json::as_f64)
                    .ok_or("missing number field `best_wall_secs`")?,
                profile,
            });
        }
        // v1 records predate the field; every v1 writer ran serial lanes.
        let threads = doc.get("threads").and_then(Json::as_u64).unwrap_or(1);
        Ok(BenchRecord {
            schema,
            seq: need_u64(&doc, "seq")?,
            scale: need_str(&doc, "scale")?,
            seed: need_u64(&doc, "seed")?,
            iters: need_u64(&doc, "iters")?,
            threads,
            host,
            configs,
        })
    }
}

/// The next free sequence number among `BENCH_<n>.json` files in `dir`
/// (1 when none exist). `BENCH_baseline.json` does not consume a number.
#[must_use]
pub fn next_seq(dir: &Path) -> u64 {
    let mut max = 0u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("BENCH_")
                .and_then(|rest| rest.strip_suffix(".json"))
            {
                if let Ok(n) = num.parse::<u64>() {
                    max = max.max(n);
                }
            }
        }
    }
    max + 1
}

/// The fixed configuration grid both `perf_micro` and `bench_compare`
/// measure: (baseline, IDYLL) × (tracer off, tracer on), 2 GPUs, SC.
pub const CONFIGS: [(&str, bool); 2] = [("baseline/SC/2gpu", false), ("idyll/SC/2gpu", true)];

fn run_once(
    hc: &HarnessConfig,
    idyll: bool,
    traced: bool,
    profiled: bool,
) -> Result<(f64, u64, Option<Profiler>), SimError> {
    let mut cfg = if idyll {
        SystemConfig::idyll(2)
    } else {
        SystemConfig::baseline(2)
    };
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: hc.scale.counter_threshold(),
    };
    cfg.seed = hc.seed;
    let spec = WorkloadSpec::paper_default(AppId::Sc, hc.scale);
    let wl = workloads::generate(&spec, 2, hc.seed);
    let mut sys = System::new(cfg, &wl);
    sys.set_threads(hc.sim_threads.max(1));
    if traced {
        sys.set_tracer(Tracer::enabled());
    }
    if profiled {
        sys.set_profiler(Profiler::enabled());
    }
    let start = std::time::Instant::now();
    let report = sys.run()?;
    let wall = start.elapsed().as_secs_f64();
    let profile = profiled.then(|| sys.profiler().clone());
    Ok((wall, report.events_processed, profile))
}

/// Best-of-N wall-clock for one configuration; the event count must be
/// identical across iterations (it is deterministic) or this errors.
///
/// # Errors
/// Simulation failures and cross-iteration event-count drift.
pub fn measure(
    hc: &HarnessConfig,
    idyll: bool,
    traced: bool,
    iters: usize,
) -> Result<(f64, u64), String> {
    let mut best = f64::INFINITY;
    let mut events: Option<u64> = None;
    for i in 0..iters.max(1) {
        let (t, n, _) = run_once(hc, idyll, traced, false).map_err(|e| e.to_string())?;
        best = best.min(t);
        match events {
            None => events = Some(n),
            Some(expected) if expected == n => {}
            Some(expected) => {
                return Err(format!(
                    "nondeterministic run: iteration {i} processed {n} events, \
                     previous iterations processed {expected}"
                ))
            }
        }
    }
    Ok((best, events.unwrap_or(0)))
}

/// Runs the full [`CONFIGS`] grid: warm-up, best-of-`iters` with the tracer
/// off and on, plus one profiled run whose per-phase breakdown lands on the
/// tracer-off entry. Returns one [`ConfigResult`] per (config, tracer mode).
///
/// # Errors
/// Simulation failures, event-count drift across iterations, and
/// profiled-vs-plain event-count mismatches.
pub fn measure_all(hc: &HarnessConfig, iters: usize) -> Result<Vec<ConfigResult>, String> {
    let mut out = Vec::new();
    for (label, idyll) in CONFIGS {
        // Warm-up run so allocator/page-cache effects don't pollute either
        // measurement.
        let _ = run_once(hc, idyll, false, false).map_err(|e| e.to_string())?;
        let (off, events) = measure(hc, idyll, false, iters)?;
        let (on, events_on) = measure(hc, idyll, true, iters)?;
        let (_, events_prof, profiler) =
            run_once(hc, idyll, false, true).map_err(|e| e.to_string())?;
        for (mode_events, mode) in [(events_on, "tracer on"), (events_prof, "profiled")] {
            if mode_events != events {
                return Err(format!(
                    "{label}: {mode} run processed {mode_events} events but the plain \
                     run processed {events}; observability must not perturb the simulation"
                ));
            }
        }
        let profile = profiler
            .map(|p| {
                p.summary()
                    .into_iter()
                    .map(|s| PhaseProfile {
                        phase: s.phase.name().to_string(),
                        count: s.count,
                        nanos: s.nanos,
                    })
                    .collect()
            })
            .unwrap_or_default();
        out.push(ConfigResult {
            label: format!("{label} tracer off"),
            events,
            best_wall_secs: off,
            profile,
        });
        out.push(ConfigResult {
            label: format!("{label} tracer on"),
            events,
            best_wall_secs: on,
            profile: Vec::new(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        BenchRecord {
            schema: SCHEMA.to_string(),
            seq: 3,
            scale: "Test".to_string(),
            seed: 42,
            iters: 2,
            threads: 4,
            host: HostInfo {
                os: "linux".to_string(),
                arch: "x86_64".to_string(),
                cpus: 8,
            },
            configs: vec![ConfigResult {
                label: "baseline/SC/2gpu tracer off".to_string(),
                events: 123_456,
                best_wall_secs: 0.25,
                profile: vec![PhaseProfile {
                    phase: "heap_pop".to_string(),
                    count: 123_456,
                    nanos: 9_000_000,
                }],
            }],
        }
    }

    #[test]
    fn record_roundtrips_through_json() {
        let rec = sample();
        let text = rec.to_json();
        assert!(!text.contains('\n'), "record is a single line");
        let back = BenchRecord::parse(&text).expect("parses");
        assert_eq!(back, rec);
    }

    #[test]
    fn parse_rejects_future_schema() {
        let text = sample().to_json().replace(SCHEMA, "idyll-bench v999");
        let err = BenchRecord::parse(&text).expect_err("must reject");
        assert!(err.contains("idyll-bench v999"), "{err}");
    }

    #[test]
    fn parse_accepts_v1_records_without_threads() {
        // A v1 writer never emitted `threads`; readers default it to the
        // serial lanes every v1 build ran.
        let mut rec = sample();
        rec.schema = SCHEMA_V1.to_string();
        rec.threads = 1;
        let text = rec.to_json().replace(",\"threads\":1", "");
        assert!(!text.contains("threads"), "{text}");
        let back = BenchRecord::parse(&text).expect("v1 records stay readable");
        assert_eq!(back.schema, SCHEMA_V1);
        assert_eq!(back.threads, 1);
    }

    #[test]
    fn parse_tolerates_unknown_forward_compat_fields() {
        // A same-schema record from a slightly newer writer may carry
        // extra fields; they must be ignored, not fatal.
        let text = sample()
            .to_json()
            .replacen('{', "{\"future_field\":{\"nested\":[1,2]},", 1);
        let back = BenchRecord::parse(&text).expect("unknown fields are ignored");
        assert_eq!(back, sample());
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert!(BenchRecord::parse("{}").is_err());
        assert!(BenchRecord::parse("not json").is_err());
    }

    #[test]
    fn events_per_sec_handles_zero_wall() {
        let mut c = sample().configs.remove(0);
        c.best_wall_secs = 0.0;
        assert!(c.events_per_sec().abs() < 1e-12);
    }

    #[test]
    fn next_seq_scans_existing_records() {
        let dir = std::env::temp_dir().join(format!("idyll-bench-seq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert_eq!(next_seq(&dir), 1);
        std::fs::write(dir.join("BENCH_2.json"), "{}").expect("write");
        std::fs::write(dir.join("BENCH_baseline.json"), "{}").expect("write");
        std::fs::write(dir.join("BENCH_007.json"), "{}").expect("write");
        assert_eq!(next_seq(&dir), 8);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
