//! Experiment harness: one function per paper table/figure.
//!
//! Every function runs the required scheme × workload grid on the simulator
//! and renders a text table shaped like the corresponding figure in the
//! paper (rows = applications in figure order, columns = schemes/series,
//! plus the paper's `Ave.` row). The per-figure binaries in `src/bin` and
//! the `figures` bench target call into here; EXPERIMENTS.md records the
//! outputs next to the paper's numbers.
//!
//! # Example
//!
//! ```no_run
//! use idyll_bench::{Harness, HarnessConfig};
//! let h = Harness::new(HarnessConfig::from_env());
//! println!("{}", h.fig11().expect("simulation succeeds"));
//! ```

use std::collections::BTreeMap;

use idyll_core::irmb::IrmbConfig;
use idyll_core::transfw::TransFwConfig;
use mgpu_system::config::{DirectoryMode, IdyllConfig, SystemConfig};
use mgpu_system::runner::{format_table, run_jobs_timed_observed, Job, RunObserver};
use mgpu_system::system::SimError;
use mgpu_system::SimReport;
use uvm_driver::policy::MigrationPolicy;
use workloads::dnn::{generate_dnn, DnnModel, DnnSpec};
use workloads::{AppId, Scale, WorkloadSpec};

/// Harness-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Trace scale (defaults to `Small`; set `IDYLL_SCALE=full` for the
    /// larger runs, `IDYLL_SCALE=test` for CI smoke).
    pub scale: Scale,
    /// Worker threads for the run grid (parallelism across jobs).
    pub threads: usize,
    /// Worker threads for each simulation's event lanes (parallelism
    /// within a job; 0 or 1 = serial). Artifacts are byte-identical for
    /// any value.
    pub sim_threads: usize,
    /// Workload seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// Reads `IDYLL_SCALE`, `IDYLL_THREADS`, `IDYLL_SIM_THREADS` and
    /// `IDYLL_SEED` from the environment.
    pub fn from_env() -> Self {
        let scale = match std::env::var("IDYLL_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("test") => Scale::Test,
            _ => Scale::Small,
        };
        let threads = std::env::var("IDYLL_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            });
        let sim_threads = std::env::var("IDYLL_SIM_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let seed = std::env::var("IDYLL_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        HarnessConfig {
            scale,
            threads,
            sim_threads,
            seed,
        }
    }
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: Scale::Small,
            threads: 8,
            sim_threads: 1,
            seed: 42,
        }
    }
}

pub mod bench_record;
pub mod grid_metrics;

/// `results[app][scheme]` for a completed grid.
pub type Grid = BTreeMap<String, BTreeMap<String, SimReport>>;

/// The experiment harness.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    cfg: HarnessConfig,
}

impl Harness {
    /// Creates a harness.
    pub fn new(cfg: HarnessConfig) -> Self {
        Harness { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> HarnessConfig {
        self.cfg
    }

    /// The scaled access-counter policy standing in for the driver's 256
    /// (see DESIGN.md §6 on threshold scaling).
    pub fn policy(&self) -> MigrationPolicy {
        MigrationPolicy::AccessCounter {
            threshold: self.cfg.scale.counter_threshold(),
        }
    }

    /// The baseline system at `n_gpus` with the scaled policy.
    pub fn baseline(&self, n_gpus: usize) -> SystemConfig {
        let mut cfg = SystemConfig::baseline(n_gpus);
        cfg.policy = self.policy();
        cfg.seed = self.cfg.seed;
        cfg
    }

    /// Baseline + full IDYLL.
    pub fn idyll(&self, n_gpus: usize) -> SystemConfig {
        let mut cfg = self.baseline(n_gpus);
        cfg.idyll = Some(IdyllConfig::full());
        cfg
    }

    fn zerolat(&self, n_gpus: usize) -> SystemConfig {
        let mut cfg = self.baseline(n_gpus);
        cfg.zero_latency_invalidation = true;
        cfg
    }

    /// Runs jobs on the grid's thread pool, recording per-run wall-clock and
    /// event counts into [`grid_metrics`] before stripping the timing.
    fn run_jobs_recorded(&self, jobs: Vec<Job>) -> Result<Vec<(String, SimReport)>, SimError> {
        let obs = RunObserver {
            sim_threads: self.cfg.sim_threads,
            ..RunObserver::default()
        };
        let timed = run_jobs_timed_observed(jobs, self.cfg.threads, &obs)?;
        grid_metrics::record(&timed);
        Ok(timed.into_iter().map(|t| (t.scheme, t.report)).collect())
    }

    /// Runs spec-level grid cells, preferring a running experiment daemon.
    ///
    /// When `IDYLL_SERVE_ADDR` names a reachable `idyll-serve` daemon the
    /// cells are submitted there as one dependency graph per grid (every
    /// cell plus a terminal reduce job that fans in from all of them) —
    /// repeat sweeps then come back from its content-addressed result
    /// cache byte-identical to local runs, and a daemon restart mid-grid
    /// resumes from its durable job log. On any daemon error
    /// (unreachable, draining, failed job) the grid falls back to local
    /// execution: the daemon is an accelerator, never a requirement.
    /// Local and remote paths produce identical reports because
    /// workloads regenerate deterministically from `(spec, n_gpus,
    /// seed)` on either side.
    fn run_cells_recorded(
        &self,
        cells: Vec<idyll_serve::RemoteCell>,
    ) -> Result<Vec<(String, SimReport)>, SimError> {
        if let Ok(addr) = std::env::var("IDYLL_SERVE_ADDR") {
            if !addr.is_empty() {
                match idyll_serve::run_cells_dag(&addr, &cells) {
                    Ok(timed) => {
                        grid_metrics::record(&timed);
                        return Ok(timed.into_iter().map(|t| (t.scheme, t.report)).collect());
                    }
                    Err(e) => {
                        eprintln!(
                            "idyll-bench: daemon at {addr} unavailable ({e}); running locally"
                        );
                    }
                }
            }
        }
        let jobs = cells
            .into_iter()
            .map(|cell| Job {
                workload: workloads::generate(&cell.spec, cell.config.n_gpus, cell.seed),
                scheme: cell.scheme,
                config: cell.config,
            })
            .collect();
        self.run_jobs_recorded(jobs)
    }

    /// Runs `schemes` over the given apps at this harness's scale; returns
    /// `results[app][scheme]`.
    ///
    /// # Errors
    /// Propagates the first [`SimError`].
    pub fn run_grid(
        &self,
        apps: &[AppId],
        schemes: &[(&str, SystemConfig)],
    ) -> Result<Grid, SimError> {
        let mut cells = Vec::new();
        for &app in apps {
            for (name, cfg) in schemes {
                cells.push(idyll_serve::RemoteCell {
                    scheme: format!("{app}\u{1}{name}"),
                    config: cfg.clone(),
                    spec: WorkloadSpec::paper_default(app, self.cfg.scale),
                    seed: self.cfg.seed,
                });
            }
        }
        collect_grid(self.run_cells_recorded(cells)?)
    }

    fn rows(
        &self,
        apps: &[AppId],
        grid: &Grid,
        columns: &[&str],
        cell: impl Fn(&BTreeMap<String, SimReport>, &str) -> f64,
    ) -> Vec<(&'static str, Vec<f64>)> {
        apps.iter()
            .map(|app| {
                let per_app = &grid[app.name()];
                (
                    app.name(),
                    columns.iter().map(|c| cell(per_app, c)).collect(),
                )
            })
            .collect()
    }

    /// Table 2: prints the baseline configuration.
    pub fn table2(&self) -> String {
        let cfg = self.baseline(4);
        let mut s = String::from("Table 2: baseline multi-GPU configuration\n");
        s.push_str(&format!("  CUs per GPU            : {}\n", cfg.gpu.cus));
        s.push_str(&format!(
            "  Warps per CU           : {}\n",
            cfg.gpu.warps_per_cu
        ));
        s.push_str(&format!(
            "  L1 TLB                 : {} entries, {}-way, {} lookup\n",
            cfg.gpu.l1_tlb.entries, cfg.gpu.l1_tlb.ways, cfg.gpu.l1_tlb.latency
        ));
        s.push_str(&format!(
            "  L2 TLB                 : {} entries, {}-way, {} lookup\n",
            cfg.gpu.l2_tlb.entries, cfg.gpu.l2_tlb.ways, cfg.gpu.l2_tlb.latency
        ));
        s.push_str(&format!(
            "  Page walkers           : {} threads, {} per level\n",
            cfg.gpu.gmmu.walker_threads, cfg.gpu.gmmu.walker.per_level_latency
        ));
        s.push_str(&format!(
            "  Page-walk cache        : {} entries\n",
            cfg.gpu.gmmu.pwc_entries
        ));
        s.push_str(&format!(
            "  Page-walk queue        : {} entries\n",
            cfg.gpu.gmmu.walk_queue_entries
        ));
        s.push_str(&format!(
            "  Access counter thresh. : {} (paper: 256; scaled, DESIGN.md §6)\n",
            self.cfg.scale.counter_threshold()
        ));
        s.push_str(&format!(
            "  Inter-GPU network      : {:.0} B/cy NVLink-v2\n",
            cfg.interconnect.nvlink_bytes_per_cycle
        ));
        s.push_str(&format!(
            "  CPU-GPU network        : {:.0} B/cy PCIe-v4\n",
            cfg.interconnect.pcie_bytes_per_cycle
        ));
        s.push_str(&format!("  Page size              : {}\n", cfg.page_size));
        s
    }

    /// Table 3: applications, suites, patterns, measured vs paper MPKI.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn table3(&self) -> Result<String, SimError> {
        let schemes = [("base", self.baseline(4))];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let mut s =
            String::from("Table 3: applications (measured MPKI from baseline simulation)\n");
        s.push_str(&format!(
            "{:<6}{:<24}{:<16}{:>12}{:>12}\n",
            "app", "suite", "pattern", "paper MPKI", "sim MPKI"
        ));
        for app in AppId::ALL {
            let r = &grid[app.name()]["base"];
            s.push_str(&format!(
                "{:<6}{:<24}{:<16}{:>12.2}{:>12.2}\n",
                app.name(),
                app.suite(),
                format!("{:?}", app.pattern()),
                app.paper_mpki(),
                r.mpki()
            ));
        }
        Ok(s)
    }

    /// Figure 1: page-table invalidation overhead as % of execution time,
    /// measured by differential simulation (baseline vs zero-latency
    /// invalidation) on a 2-GPU system, for the paper's six profiled apps.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig01(&self) -> Result<String, SimError> {
        let apps = [
            AppId::Mt,
            AppId::Mm,
            AppId::Pr,
            AppId::St,
            AppId::Sc,
            AppId::Km,
        ];
        let schemes = [("base", self.baseline(2)), ("zerolat", self.zerolat(2))];
        let grid = self.run_grid(&apps, &schemes)?;
        let rows = self.rows(&apps, &grid, &["overhead%"], |per, _| {
            let base = per["base"].exec_cycles as f64;
            let ideal = per["zerolat"].exec_cycles as f64;
            ((base - ideal) / base * 100.0).max(0.0)
        });
        Ok(format_table(
            "Figure 1: page table invalidation overhead (% of execution time, 2 GPUs; paper avg ~42%)",
            &["overhead%"],
            &rows,
            1,
        ))
    }

    /// Figure 2: migration-policy comparison, normalised to access-counter
    /// based migration.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig02(&self) -> Result<String, SimError> {
        let mut first_touch = self.baseline(4);
        first_touch.policy = MigrationPolicy::FirstTouch;
        let mut on_touch = self.baseline(4);
        on_touch.policy = MigrationPolicy::OnTouch;
        let schemes = [
            ("counter", self.baseline(4)),
            ("first-touch", first_touch),
            ("on-touch", on_touch),
            ("zerolat", self.zerolat(4)),
        ];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let cols = ["first-touch", "on-touch", "zerolat"];
        let rows = self.rows(&AppId::ALL, &grid, &cols, |per, c| {
            per[c].speedup_vs(&per["counter"])
        });
        Ok(format_table(
            "Figure 2: performance relative to access-counter-based migration (higher is better)",
            &cols,
            &rows,
            3,
        ))
    }

    /// Figure 4: distribution of accesses referencing shared pages.
    ///
    /// # Errors
    /// Never fails in practice (no simulation involved).
    pub fn fig04(&self) -> Result<String, SimError> {
        let n = 4;
        let mut rows = Vec::new();
        for app in AppId::ALL {
            let spec = WorkloadSpec::paper_default(app, self.cfg.scale);
            let wl = workloads::generate(&spec, n, self.cfg.seed);
            let dist = wl.access_sharing_distribution();
            rows.push((app.name(), dist.iter().map(|v| v * 100.0).collect()));
        }
        Ok(format_table(
            "Figure 4: % of accesses to pages shared by k GPUs",
            &["1 GPU", "2 GPUs", "3 GPUs", "4 GPUs"],
            &rows,
            1,
        ))
    }

    /// Figure 5: walker request mix (demand vs necessary vs unnecessary
    /// invalidations) in the baseline.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig05(&self) -> Result<String, SimError> {
        let schemes = [("base", self.baseline(4))];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let cols = ["demand%", "necessary%", "unnecessary%"];
        let rows = self.rows(&AppId::ALL, &grid, &cols, |per, c| {
            let mix = per["base"].walker_mix;
            let denom = (mix.demand + mix.invalidations()) as f64;
            if denom == 0.0 {
                return 0.0;
            }
            match c {
                "demand%" => mix.demand as f64 / denom * 100.0,
                "necessary%" => mix.invalidation_necessary as f64 / denom * 100.0,
                _ => mix.invalidation_unnecessary as f64 / denom * 100.0,
            }
        });
        Ok(format_table(
            "Figure 5: page-walker request mix (paper: invalidations ~27.2% of requests, ~32% of them unnecessary)",
            &cols,
            &rows,
            1,
        ))
    }

    /// Figure 6: demand TLB miss latency, baseline vs eliminating
    /// invalidation contention (relative total latency + actual mean
    /// cycles).
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig06(&self) -> Result<String, SimError> {
        let schemes = [("base", self.baseline(4)), ("no-inval", self.zerolat(4))];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let cols = ["relative", "base cycles", "no-inv cycles"];
        let rows = self.rows(&AppId::ALL, &grid, &cols, |per, c| match c {
            "relative" => per["no-inval"].relative_demand_latency(&per["base"]),
            "base cycles" => per["base"].demand_miss_latency.mean().unwrap_or(0.0),
            _ => per["no-inval"].demand_miss_latency.mean().unwrap_or(0.0),
        });
        Ok(format_table(
            "Figure 6: demand TLB miss latency without invalidation contention (paper: 55.8% reduction)",
            &cols,
            &rows,
            2,
        ))
    }

    /// Figure 7: page-migration waiting latency share of total migration
    /// latency in the baseline.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig07(&self) -> Result<String, SimError> {
        let schemes = [("base", self.baseline(4))];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let cols = ["waiting%", "wait cycles", "total cycles"];
        let rows = self.rows(&AppId::ALL, &grid, &cols, |per, c| {
            let r = &per["base"];
            match c {
                "waiting%" => {
                    let total = r.migration_total.sum();
                    if total == 0.0 {
                        0.0
                    } else {
                        r.migration_waiting.sum() / total * 100.0
                    }
                }
                "wait cycles" => r.migration_waiting.mean().unwrap_or(0.0),
                _ => r.migration_total.mean().unwrap_or(0.0),
            }
        });
        Ok(format_table(
            "Figure 7: migration waiting latency (paper: 38.3% of migration latency; ~854 of ~2230 cycles)",
            &cols,
            &rows,
            1,
        ))
    }

    /// Figure 11: overall performance of the IDYLL design points relative
    /// to baseline.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig11(&self) -> Result<String, SimError> {
        let mut only_lazy = self.baseline(4);
        only_lazy.idyll = Some(IdyllConfig::only_lazy());
        let mut only_dir = self.baseline(4);
        only_dir.idyll = Some(IdyllConfig::only_directory());
        let mut inmem = self.baseline(4);
        inmem.idyll = Some(IdyllConfig::in_mem());
        let schemes = [
            ("base", self.baseline(4)),
            ("only-lazy", only_lazy),
            ("only-in-pte", only_dir),
            ("idyll-inmem", inmem),
            ("idyll", self.idyll(4)),
            ("zerolat", self.zerolat(4)),
        ];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let cols = [
            "only-lazy",
            "only-in-pte",
            "idyll-inmem",
            "idyll",
            "zerolat",
        ];
        let rows = self.rows(&AppId::ALL, &grid, &cols, |per, c| {
            per[c].speedup_vs(&per["base"])
        });
        Ok(format_table(
            "Figure 11: performance relative to baseline (paper: lazy 1.558x, in-PTE 1.273x, InMem 1.70x, IDYLL 1.699x)",
            &cols,
            &rows,
            3,
        ))
    }

    /// Figure 12: demand TLB miss latency under IDYLL relative to baseline.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig12(&self) -> Result<String, SimError> {
        let schemes = [("base", self.baseline(4)), ("idyll", self.idyll(4))];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let rows = self.rows(&AppId::ALL, &grid, &["relative"], |per, _| {
            per["idyll"].relative_demand_latency(&per["base"])
        });
        Ok(format_table(
            "Figure 12: IDYLL demand TLB miss latency relative to baseline (paper avg ~0.40)",
            &["relative"],
            &rows,
            2,
        ))
    }

    /// Figure 13: invalidation request count and total latency under IDYLL
    /// relative to baseline.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig13(&self) -> Result<String, SimError> {
        let schemes = [("base", self.baseline(4)), ("idyll", self.idyll(4))];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let cols = ["latency ratio", "count ratio"];
        let rows = self.rows(&AppId::ALL, &grid, &cols, |per, c| match c {
            "latency ratio" => per["idyll"].relative_invalidation_latency(&per["base"]),
            _ => {
                let b = per["base"].invalidation_messages as f64;
                if b == 0.0 {
                    0.0
                } else {
                    per["idyll"].invalidation_messages as f64 / b
                }
            }
        });
        Ok(format_table(
            "Figure 13: IDYLL invalidation latency/count relative to baseline (paper: latency 0.32, count 0.68)",
            &cols,
            &rows,
            2,
        ))
    }

    /// Figure 14: migration waiting latency under IDYLL relative to
    /// baseline.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig14(&self) -> Result<String, SimError> {
        let schemes = [("base", self.baseline(4)), ("idyll", self.idyll(4))];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let rows = self.rows(&AppId::ALL, &grid, &["relative"], |per, _| {
            per["idyll"].relative_migration_waiting(&per["base"])
        });
        Ok(format_table(
            "Figure 14: IDYLL migration waiting latency relative to baseline (paper avg ~0.29)",
            &["relative"],
            &rows,
            2,
        ))
    }

    /// Figure 15: IRMB geometry sensitivity.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig15(&self) -> Result<String, SimError> {
        let geometries = [(16, 8), (16, 16), (32, 8), (32, 16), (64, 16)];
        let mut schemes: Vec<(String, SystemConfig)> = vec![("base".into(), self.baseline(4))];
        for (bases, offsets) in geometries {
            let mut cfg = self.idyll(4);
            cfg.idyll = Some(IdyllConfig {
                irmb: IrmbConfig::new(bases, offsets),
                ..IdyllConfig::full()
            });
            schemes.push((format!("({bases},{offsets})"), cfg));
        }
        let scheme_refs: Vec<(&str, SystemConfig)> = schemes
            .iter()
            .map(|(n, c)| (n.as_str(), c.clone()))
            .collect();
        let grid = self.run_grid(&AppId::ALL, &scheme_refs)?;
        let cols: Vec<&str> = schemes[1..].iter().map(|(n, _)| n.as_str()).collect();
        let rows = self.rows(&AppId::ALL, &grid, &cols, |per, c| {
            per[c].speedup_vs(&per["base"])
        });
        Ok(format_table(
            "Figure 15: IDYLL speedup vs baseline across IRMB geometries (paper: (16,8) 1.448x … (64,16) 1.769x)",
            &cols,
            &rows,
            3,
        ))
    }

    /// Figure 16: sensitivity to page-table-walker thread count.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig16(&self) -> Result<String, SimError> {
        let mut schemes: Vec<(String, SystemConfig)> = Vec::new();
        for threads in [16usize, 32] {
            let mut base = self.baseline(4);
            base.gpu.gmmu.walker_threads = threads;
            let mut idy = self.idyll(4);
            idy.gpu.gmmu.walker_threads = threads;
            schemes.push((format!("base{threads}"), base));
            schemes.push((format!("idyll{threads}"), idy));
        }
        let scheme_refs: Vec<(&str, SystemConfig)> = schemes
            .iter()
            .map(|(n, c)| (n.as_str(), c.clone()))
            .collect();
        let grid = self.run_grid(&AppId::ALL, &scheme_refs)?;
        let cols = ["16 threads", "32 threads"];
        let rows = self.rows(&AppId::ALL, &grid, &cols, |per, c| {
            if c.starts_with("16") {
                per["idyll16"].speedup_vs(&per["base16"])
            } else {
                per["idyll32"].speedup_vs(&per["base32"])
            }
        });
        Ok(format_table(
            "Figure 16: IDYLL speedup with 16/32 walker threads (paper: 1.60x / 1.433x)",
            &cols,
            &rows,
            3,
        ))
    }

    /// Figure 17: 2048-entry L2 TLB.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig17(&self) -> Result<String, SimError> {
        let mut base = self.baseline(4);
        base.gpu.l2_tlb = vm_model::tlb::TlbConfig::large_l2();
        let mut idy = self.idyll(4);
        idy.gpu.l2_tlb = vm_model::tlb::TlbConfig::large_l2();
        let schemes = [("base2048", base), ("idyll2048", idy)];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let rows = self.rows(&AppId::ALL, &grid, &["speedup"], |per, _| {
            per["idyll2048"].speedup_vs(&per["base2048"])
        });
        Ok(format_table(
            "Figure 17: IDYLL speedup with a 2048-entry L2 TLB (paper: 1.614x)",
            &["speedup"],
            &rows,
            3,
        ))
    }

    /// Figure 18: 8- and 16-GPU systems.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig18(&self) -> Result<String, SimError> {
        self.gpu_scaling(
            &[8, 16],
            11,
            "Figure 18: IDYLL speedup with 8/16 GPUs (paper: 1.753x / 1.791x)",
        )
    }

    /// Figure 19: 4 directory access bits at 8/16/32 GPUs.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig19(&self) -> Result<String, SimError> {
        self.gpu_scaling(
            &[8, 16, 32],
            4,
            "Figure 19: IDYLL speedup with 4 access bits at 8/16/32 GPUs (paper: 1.565x/1.571x/1.701x)",
        )
    }

    fn gpu_scaling(
        &self,
        counts: &[usize],
        access_bits: u32,
        title: &str,
    ) -> Result<String, SimError> {
        let mut schemes: Vec<(String, SystemConfig)> = Vec::new();
        for &n in counts {
            let base = self.baseline(n);
            let mut idy = self.idyll(n);
            idy.idyll = Some(IdyllConfig {
                directory: DirectoryMode::InPte { access_bits },
                ..IdyllConfig::full()
            });
            schemes.push((format!("base{n}"), base));
            schemes.push((format!("idyll{n}"), idy));
        }
        let scheme_refs: Vec<(&str, SystemConfig)> = schemes
            .iter()
            .map(|(n, c)| (n.as_str(), c.clone()))
            .collect();
        let grid = self.run_grid(&AppId::ALL, &scheme_refs)?;
        let cols: Vec<String> = counts.iter().map(|n| format!("{n} GPUs")).collect();
        let col_refs: Vec<&str> = cols.iter().map(|c| c.as_str()).collect();
        let rows = self.rows(&AppId::ALL, &grid, &col_refs, |per, c| {
            let n: usize = c.split(' ').next().expect("count").parse().expect("int");
            per[&format!("idyll{n}")].speedup_vs(&per[&format!("base{n}")])
        });
        Ok(format_table(title, &col_refs, &rows, 3))
    }

    /// Figure 20: access-counter threshold sensitivity (T vs 2T, mirroring
    /// the paper's 256 vs 512).
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig20(&self) -> Result<String, SimError> {
        let t = self.cfg.scale.counter_threshold();
        let double = MigrationPolicy::AccessCounter { threshold: t * 2 };
        let mut base2 = self.baseline(4);
        base2.policy = double;
        let mut idy2 = self.idyll(4);
        idy2.policy = double;
        let schemes = [
            ("baseT", self.baseline(4)),
            ("idyllT", self.idyll(4)),
            ("base2T", base2),
            ("idyll2T", idy2),
        ];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let cols = ["idyll@T", "base@2T", "idyll@2T"];
        let rows = self.rows(&AppId::ALL, &grid, &cols, |per, c| {
            let r = match c {
                "idyll@T" => &per["idyllT"],
                "base@2T" => &per["base2T"],
                _ => &per["idyll2T"],
            };
            r.speedup_vs(&per["baseT"])
        });
        Ok(format_table(
            "Figure 20: threshold sensitivity, normalised to baseline@T (paper: idyll@256 1.699x, base@512 0.90x, idyll@512 ~1.17x)",
            &cols,
            &rows,
            3,
        ))
    }

    /// Figure 21: 2 MiB pages with enlarged inputs.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig21(&self) -> Result<String, SimError> {
        let base = self.baseline(4).with_large_pages();
        let idy = self.idyll(4).with_large_pages();
        let schemes = [("base2M", base), ("idyll2M", idy)];
        // Enlarged inputs (§7.3) to stress the 2 MiB reach.
        let mut cells = Vec::new();
        for app in AppId::ALL {
            let spec = WorkloadSpec::paper_default(app, self.cfg.scale).enlarged(4);
            for (name, cfg) in &schemes {
                cells.push(idyll_serve::RemoteCell {
                    scheme: format!("{app}\u{1}{name}"),
                    config: cfg.clone(),
                    spec: spec.clone(),
                    seed: self.cfg.seed,
                });
            }
        }
        let grid = collect_grid(self.run_cells_recorded(cells)?)?;
        let rows = self.rows(&AppId::ALL, &grid, &["speedup"], |per, _| {
            per["idyll2M"].speedup_vs(&per["base2M"])
        });
        Ok(format_table(
            "Figure 21: IDYLL speedup with 2MB pages (paper: 1.363x average)",
            &["speedup"],
            &rows,
            3,
        ))
    }

    /// Figure 22: IDYLL vs page replication.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig22(&self) -> Result<String, SimError> {
        let mut repl = self.baseline(4);
        repl.replication = true;
        let schemes = [("replication", repl), ("idyll", self.idyll(4))];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let rows = self.rows(&AppId::ALL, &grid, &["idyll/replication"], |per, _| {
            per["idyll"].speedup_vs(&per["replication"])
        });
        Ok(format_table(
            "Figure 22: IDYLL relative to page replication (paper: 1.25x average; biggest on write-heavy IM/C2D)",
            &["idyll/replication"],
            &rows,
            3,
        ))
    }

    /// Figure 23: comparison and combination with Trans-FW.
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig23(&self) -> Result<String, SimError> {
        let mut transfw = self.baseline(4);
        transfw.transfw = Some(TransFwConfig::default());
        let mut combined = self.idyll(4);
        combined.transfw = Some(TransFwConfig::default());
        let schemes = [
            ("base", self.baseline(4)),
            ("trans-fw", transfw),
            ("idyll", self.idyll(4)),
            ("combined", combined),
        ];
        let grid = self.run_grid(&AppId::ALL, &schemes)?;
        let cols = ["trans-fw", "idyll", "idyll+trans-fw"];
        let rows = self.rows(&AppId::ALL, &grid, &cols, |per, c| {
            let r = match c {
                "trans-fw" => &per["trans-fw"],
                "idyll" => &per["idyll"],
                _ => &per["combined"],
            };
            r.speedup_vs(&per["base"])
        });
        Ok(format_table(
            "Figure 23: Trans-FW vs IDYLL vs combination (paper: 1.30x / 1.699x / 1.863x)",
            &cols,
            &rows,
            3,
        ))
    }

    /// Figure 24: DNN workloads (VGG16, ResNet18).
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn fig24(&self) -> Result<String, SimError> {
        let mut jobs = Vec::new();
        for model in [DnnModel::Vgg16, DnnModel::Resnet18] {
            let spec = match self.cfg.scale {
                Scale::Test => DnnSpec::test_default(model),
                _ => DnnSpec::paper_default(model),
            };
            let wl = generate_dnn(&spec, 4, self.cfg.seed);
            for (name, cfg) in [("base", self.baseline(4)), ("idyll", self.idyll(4))] {
                jobs.push(Job {
                    scheme: format!("{model}\u{1}{name}"),
                    config: cfg,
                    workload: wl.clone(),
                });
            }
        }
        let grid = collect_grid(self.run_jobs_recorded(jobs)?)?;
        let mut s = String::from(
            "Figure 24: IDYLL on DNN workloads (paper: VGG16 +15.9%, ResNet18 +12.0%)\n",
        );
        for model in ["VGG16", "ResNet18"] {
            let per = &grid[model];
            s.push_str(&format!(
                "{:<10} speedup = {:.3}x\n",
                model,
                per["idyll"].speedup_vs(&per["base"])
            ));
        }
        Ok(s)
    }
}

fn collect_grid(results: Vec<(String, SimReport)>) -> Result<Grid, SimError> {
    let mut grid: Grid = BTreeMap::new();
    for (key, report) in results {
        let (row, scheme) = key.split_once('\u{1}').expect("composite key");
        grid.entry(row.to_string())
            .or_default()
            .insert(scheme.to_string(), report);
    }
    Ok(grid)
}

/// A lazily-evaluated figure generator.
pub type FigureFn = fn(&Harness) -> Result<String, SimError>;

/// All figure ids with their harness functions, used by the `all_figures`
/// binary and the bench target. Lazy, so callers can evaluate and persist
/// each figure incrementally.
pub fn all_figures() -> Vec<(&'static str, FigureFn)> {
    vec![
        ("table2", |h| Ok(h.table2())),
        ("table3", Harness::table3),
        ("fig01", Harness::fig01),
        ("fig02", Harness::fig02),
        ("fig04", Harness::fig04),
        ("fig05", Harness::fig05),
        ("fig06", Harness::fig06),
        ("fig07", Harness::fig07),
        ("fig11", Harness::fig11),
        ("fig12", Harness::fig12),
        ("fig13", Harness::fig13),
        ("fig14", Harness::fig14),
        ("fig15", Harness::fig15),
        ("fig16", Harness::fig16),
        ("fig17", Harness::fig17),
        ("fig18", Harness::fig18),
        ("fig19", Harness::fig19),
        ("fig20", Harness::fig20),
        ("fig21", Harness::fig21),
        ("fig22", Harness::fig22),
        ("fig23", Harness::fig23),
        ("fig24", Harness::fig24),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_harness() -> Harness {
        Harness::new(HarnessConfig {
            scale: Scale::Test,
            threads: 4,
            sim_threads: 1,
            seed: 7,
        })
    }

    #[test]
    fn table2_mentions_key_parameters() {
        let h = test_harness();
        let t = h.table2();
        assert!(t.contains("512 entries"));
        assert!(t.contains("8 threads"));
        assert!(t.contains("128 entries"));
    }

    #[test]
    fn fig04_rows_sum_to_100() {
        let h = test_harness();
        let out = h.fig04().expect("no simulation needed");
        assert!(out.contains("MT"));
        assert!(out.contains("Ave."));
    }

    #[test]
    fn fig11_smoke_at_test_scale() {
        let h = test_harness();
        let out = h.fig11().expect("runs");
        assert!(out.contains("idyll"));
        assert!(out.contains("Ave."));
        // All nine apps appear.
        for app in AppId::ALL {
            assert!(out.contains(app.name()), "{out}");
        }
    }

    #[test]
    fn policy_uses_scaled_threshold() {
        let h = test_harness();
        assert_eq!(
            h.policy(),
            MigrationPolicy::AccessCounter {
                threshold: Scale::Test.counter_threshold()
            }
        );
    }
}
