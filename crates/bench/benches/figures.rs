//! `cargo bench` entry point that regenerates every table and figure in the
//! paper's evaluation section (DESIGN.md per-experiment index), writing the
//! outputs to `results/` and echoing them to stdout.
//!
//! Scale defaults to `Small`; set `IDYLL_SCALE=full` for the larger runs or
//! `IDYLL_SCALE=test` for a quick smoke pass.

use idyll_bench::{all_figures, Harness, HarnessConfig};

fn main() {
    // Under `cargo bench -- --test` (or explicit bench filtering) cargo
    // passes extra args; we regenerate everything regardless, which is the
    // point of this target.
    let cfg = HarnessConfig::from_env();
    eprintln!(
        "regenerating all paper tables/figures at {:?} scale on {} threads…",
        cfg.scale, cfg.threads
    );
    let h = Harness::new(cfg);
    std::fs::create_dir_all("results").ok();
    let mut failures = 0;
    for (id, figure) in all_figures() {
        eprintln!("[{id}] running…");
        match figure(&h) {
            Ok(out) => {
                println!("{out}");
                let _ = std::fs::write(format!("results/{id}.txt"), &out);
            }
            Err(e) => {
                eprintln!("{id}: simulation failed: {e}");
                failures += 1;
            }
        }
    }
    assert_eq!(failures, 0, "{failures} figure(s) failed to regenerate");
}
