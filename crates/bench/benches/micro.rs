//! Criterion micro-benchmarks of the core data structures and of one
//! end-to-end simulation step, so structural regressions show up before the
//! figure-level runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use idyll_core::directory::{DirectoryConfig, InPteDirectory};
use idyll_core::irmb::{Irmb, IrmbConfig};
use idyll_core::vm_table::VmDirectory;
use mgpu_system::config::SystemConfig;
use mgpu_system::System;
use sim_engine::rng::DetRng;
use sim_engine::{Cycle, EventQueue};
use uvm_driver::policy::MigrationPolicy;
use vm_model::addr::{PageSize, Vpn};
use vm_model::page_table::PageTable;
use vm_model::pte::Pte;
use vm_model::pwc::PageWalkCache;
use vm_model::tlb::{Tlb, TlbConfig};
use vm_model::walker::{walk_translate, WalkerConfig};
use workloads::{AppId, Scale, WorkloadSpec};

fn bench_irmb(c: &mut Criterion) {
    let mut g = c.benchmark_group("irmb");
    g.bench_function("insert_merge_heavy", |b| {
        b.iter_batched(
            || Irmb::new(IrmbConfig::default()),
            |mut irmb| {
                for i in 0..512u64 {
                    irmb.insert(Vpn::from_irmb(i / 16, (i % 16) as u16));
                }
                black_box(irmb.pending())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("lookup", |b| {
        let mut irmb = Irmb::new(IrmbConfig::default());
        for i in 0..256u64 {
            irmb.insert(Vpn::from_irmb(i / 16, (i % 16) as u16));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(7);
            black_box(irmb.lookup(Vpn::from_irmb(i % 40, (i % 20) as u16)))
        })
    });
    g.finish();
}

fn bench_directory(c: &mut Criterion) {
    let mut g = c.benchmark_group("directory");
    g.bench_function("in_pte_record_and_targets", |b| {
        let dir = InPteDirectory::new(DirectoryConfig::new(16));
        let mut pte = Pte::new_mapped(1, true);
        let mut gpu = 0usize;
        b.iter(|| {
            gpu = (gpu + 1) % 16;
            dir.record_access(&mut pte, gpu);
            black_box(dir.invalidation_targets(&pte))
        })
    });
    g.bench_function("vm_table_lookup", |b| {
        let mut dir = VmDirectory::new(4);
        for p in 0..4096u64 {
            dir.record_access(Vpn(p), (p % 4) as usize);
        }
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 97) % 4096;
            black_box(dir.invalidation_targets(Vpn(p), 0))
        })
    });
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm");
    g.bench_function("page_walk_cold_pwc", |b| {
        let mut pt = PageTable::new(PageSize::Size4K);
        for v in 0..10_000u64 {
            pt.insert(Vpn(v * 513), Pte::new_mapped(v + 1, true));
        }
        let mut v = 0u64;
        b.iter_batched(
            || PageWalkCache::new(128, 5),
            |mut pwc| {
                v = (v + 1) % 10_000;
                black_box(walk_translate(&pt, &mut pwc, Vpn(v * 513), WalkerConfig::default()))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("tlb_lookup_fill", |b| {
        let mut tlb = Tlb::new(TlbConfig::baseline_l2());
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(13);
            let vpn = Vpn(v % 2048);
            if tlb.lookup(vpn).is_none() {
                tlb.fill(vpn, Pte::new_mapped(v, true));
            }
            black_box(tlb.occupancy())
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("event_queue_churn", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::new();
                let mut rng = DetRng::seed(1);
                for i in 0..1024u64 {
                    q.schedule(Cycle(rng.below(10_000)), i);
                }
                (q, DetRng::seed(2))
            },
            |(mut q, mut rng)| {
                for _ in 0..1024 {
                    if let Some((at, _)) = q.pop() {
                        q.schedule(at + rng.below(100) + 1, 0);
                    }
                }
                black_box(q.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let spec = WorkloadSpec::paper_default(AppId::Sc, Scale::Test);
    let wl = workloads::generate(&spec, 2, 42);
    for (name, idyll) in [("baseline", false), ("idyll", true)] {
        g.bench_function(format!("sc_test_2gpu_{name}"), |b| {
            b.iter(|| {
                let mut cfg = if idyll {
                    SystemConfig::idyll(2)
                } else {
                    SystemConfig::baseline(2)
                };
                cfg.policy = MigrationPolicy::AccessCounter {
                    threshold: Scale::Test.counter_threshold(),
                };
                black_box(System::new(cfg, &wl).run().expect("completes"))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_irmb,
    bench_directory,
    bench_vm,
    bench_engine,
    bench_end_to_end
);
criterion_main!(benches);
