//! Trans-FW comparator (§7.5, reimplemented from Li et al., HPCA '23).
//!
//! Trans-FW short-circuits far faults: instead of always escalating an
//! L2-TLB-missing, locally-unmapped page to the host UVM driver, each GPU
//! keeps a *Probe Result Table* (PRT) of fingerprints recording which remote
//! GPU's page table likely holds a valid translation for a VPN. On a far
//! fault with a PRT hit, the GPU forwards the translation request to that
//! remote GPU over NVLink, skipping the much slower PCIe + host-walk +
//! batching path. Fingerprints are compact hashes, so lookups may yield
//! false positives (stale or aliased): a failed remote probe falls back to
//! the host path, paying the probe latency on top.
//!
//! For the paper's iso-overhead comparison the PRT is sized to 720 bytes /
//! 443 fingerprints, matching the IRMB budget.

use mem_model::interconnect::GpuId;
use vm_model::addr::Vpn;

/// Width of a stored fingerprint in bits (13 bits ⇒ 443 × 13 ≈ 720 B).
pub const FINGERPRINT_BITS: u32 = 13;

/// Trans-FW configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransFwConfig {
    /// PRT capacity in fingerprints. The paper's iso-overhead setting is
    /// 443 (original design: 500 fingerprints / 813 bytes).
    pub fingerprints: usize,
}

impl Default for TransFwConfig {
    fn default() -> Self {
        TransFwConfig { fingerprints: 443 }
    }
}

/// One PRT slot: a VPN fingerprint plus the remote GPU believed to hold the
/// translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PrtSlot {
    fp: u16,
    holder: GpuId,
    stamp: u64,
}

/// Result of a PRT probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrtProbe {
    /// No fingerprint matched: go straight to the host.
    Miss,
    /// A fingerprint matched: try the remote GPU first (may be stale or an
    /// alias — the caller must verify against the remote page table).
    Hit(GpuId),
}

/// The per-GPU Probe Result Table.
///
/// # Example
///
/// ```
/// use idyll_core::transfw::{TransFw, TransFwConfig, PrtProbe};
/// use vm_model::Vpn;
///
/// let mut prt = TransFw::new(TransFwConfig::default());
/// prt.record(Vpn(0x42), 3);
/// assert_eq!(prt.probe(Vpn(0x42)), PrtProbe::Hit(3));
/// ```
#[derive(Debug, Clone)]
pub struct TransFw {
    slots: Vec<PrtSlot>,
    config: TransFwConfig,
    clock: u64,
    probes: u64,
    hits: u64,
    false_forwards: u64,
}

impl TransFw {
    /// Creates an empty PRT.
    pub fn new(config: TransFwConfig) -> Self {
        assert!(config.fingerprints > 0);
        TransFw {
            slots: Vec::with_capacity(config.fingerprints),
            config,
            clock: 0,
            probes: 0,
            hits: 0,
            false_forwards: 0,
        }
    }

    /// The fingerprint hash: a 13-bit mix of the VPN.
    #[inline]
    pub fn fingerprint(vpn: Vpn) -> u16 {
        let mut x = vpn.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        // simlint: allow(lossy-cast) — masked to FINGERPRINT_BITS (< 16) before the cast
        (x & ((1 << FINGERPRINT_BITS) - 1)) as u16
    }

    /// Records that `holder` established a translation for `vpn` (learned
    /// from driver notifications as mappings are replayed system-wide).
    /// LRU-replaces when full; an existing fingerprint is re-pointed.
    pub fn record(&mut self, vpn: Vpn, holder: GpuId) {
        self.clock += 1;
        let fp = Self::fingerprint(vpn);
        if let Some(slot) = self.slots.iter_mut().find(|s| s.fp == fp) {
            slot.holder = holder;
            slot.stamp = self.clock;
            return;
        }
        let slot = PrtSlot {
            fp,
            holder,
            stamp: self.clock,
        };
        if self.slots.len() < self.config.fingerprints {
            self.slots.push(slot);
        } else {
            let lru = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
                // simlint: allow(hot-path-panic) — this branch runs only when the slot table is full, so the LRU scan is over a non-empty slice
                .expect("non-empty");
            self.slots[lru] = slot;
        }
    }

    /// Forgets fingerprints pointing at `vpn` (invalidation: the holder's
    /// translation is being destroyed by a migration).
    pub fn invalidate(&mut self, vpn: Vpn) {
        let fp = Self::fingerprint(vpn);
        self.slots.retain(|s| s.fp != fp);
    }

    /// Probes the PRT on a far fault.
    pub fn probe(&mut self, vpn: Vpn) -> PrtProbe {
        self.probes += 1;
        let fp = Self::fingerprint(vpn);
        match self.slots.iter().find(|s| s.fp == fp) {
            Some(slot) => {
                self.hits += 1;
                PrtProbe::Hit(slot.holder)
            }
            None => PrtProbe::Miss,
        }
    }

    /// Reports that a forwarded probe failed at the remote GPU (stale or
    /// aliased fingerprint): accounted as a false forward and the
    /// fingerprint is dropped.
    pub fn report_false_forward(&mut self, vpn: Vpn) {
        self.false_forwards += 1;
        self.invalidate(vpn);
    }

    /// Number of resident fingerprints.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the PRT is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total probes.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Probe hits (including false positives later reported).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Forwards that failed remotely.
    pub fn false_forwards(&self) -> u64 {
        self.false_forwards
    }

    /// Configuration.
    pub fn config(&self) -> TransFwConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_probe_roundtrip() {
        let mut prt = TransFw::new(TransFwConfig::default());
        assert_eq!(prt.probe(Vpn(1)), PrtProbe::Miss);
        prt.record(Vpn(1), 2);
        assert_eq!(prt.probe(Vpn(1)), PrtProbe::Hit(2));
        assert_eq!(prt.hits(), 1);
        assert_eq!(prt.probes(), 2);
    }

    #[test]
    fn record_repoints_existing_fingerprint() {
        let mut prt = TransFw::new(TransFwConfig::default());
        prt.record(Vpn(1), 2);
        prt.record(Vpn(1), 3);
        assert_eq!(prt.len(), 1);
        assert_eq!(prt.probe(Vpn(1)), PrtProbe::Hit(3));
    }

    #[test]
    fn invalidate_drops_fingerprint() {
        let mut prt = TransFw::new(TransFwConfig::default());
        prt.record(Vpn(1), 2);
        prt.invalidate(Vpn(1));
        assert_eq!(prt.probe(Vpn(1)), PrtProbe::Miss);
        assert!(prt.is_empty());
    }

    #[test]
    fn capacity_lru_replacement() {
        let mut prt = TransFw::new(TransFwConfig { fingerprints: 2 });
        prt.record(Vpn(1), 0);
        prt.record(Vpn(2), 0);
        // Refresh VPN 1, then insert a third: VPN 2's slot is replaced
        // (unless fingerprints collide, which these small VPNs don't).
        prt.record(Vpn(1), 0);
        prt.record(Vpn(3), 0);
        assert_eq!(prt.probe(Vpn(1)), PrtProbe::Hit(0));
        assert_eq!(prt.probe(Vpn(3)), PrtProbe::Hit(0));
        assert_eq!(prt.probe(Vpn(2)), PrtProbe::Miss);
    }

    #[test]
    fn false_forward_accounting() {
        let mut prt = TransFw::new(TransFwConfig::default());
        prt.record(Vpn(5), 1);
        assert_eq!(prt.probe(Vpn(5)), PrtProbe::Hit(1));
        prt.report_false_forward(Vpn(5));
        assert_eq!(prt.false_forwards(), 1);
        assert_eq!(prt.probe(Vpn(5)), PrtProbe::Miss, "fingerprint dropped");
    }

    #[test]
    fn fingerprints_fit_width() {
        for v in [0u64, 1, 0xffff_ffff, u64::MAX >> 12] {
            assert!(TransFw::fingerprint(Vpn(v)) < (1 << FINGERPRINT_BITS));
        }
    }

    #[test]
    fn aliasing_is_possible_but_rare() {
        // With 13-bit fingerprints, 200 distinct VPNs should mostly be
        // distinct fingerprints.
        let mut seen = std::collections::HashSet::new();
        for v in 0..200u64 {
            seen.insert(TransFw::fingerprint(Vpn(v * 977)));
        }
        assert!(seen.len() > 190);
    }
}
