//! Hardware-overhead model for the IDYLL structures (§6.3/§6.4 overhead
//! analyses).
//!
//! The paper sizes its structures with CACTI 6.5; exact area depends on the
//! process node, so this module reproduces the paper's *storage* arithmetic
//! exactly and exposes the paper's quoted CACTI area ratios as documented
//! constants for reporting.

use crate::irmb::IrmbConfig;
use crate::transfw::{TransFwConfig, FINGERPRINT_BITS};
use crate::vm_table::VM_ACCESS_BITS;

/// Bits per IRMB base (four 9-bit radix indices, §6.3).
pub const IRMB_BASE_BITS: usize = 36;
/// Bits per IRMB offset (one 9-bit radix index).
pub const IRMB_OFFSET_BITS: usize = 9;
/// VPN bits stored per VM-Table entry (§6.4).
pub const VM_TABLE_VPN_BITS: usize = 45;
/// VM-Cache tag bits (VPN minus the 4 index bits of 16 sets).
pub const VM_CACHE_TAG_BITS: usize = 41;

/// Paper-quoted CACTI result: IRMB area as a fraction of the GPU L2 TLB.
pub const IRMB_AREA_VS_L2_TLB: f64 = 0.009;
/// Paper-quoted CACTI result: VM-Cache area as a fraction of a 32 KiB
/// 8-way CPU L1 cache.
pub const VM_CACHE_AREA_VS_L1: f64 = 0.0004;

/// Storage of one IRMB in bytes (matches §6.3's `(36 + 144) × 32 / 8`).
pub fn irmb_bytes(cfg: IrmbConfig) -> usize {
    cfg.bases * (IRMB_BASE_BITS + IRMB_OFFSET_BITS * cfg.offsets_per_base) / 8
}

/// Storage of the VM-Cache in bytes (§6.4: `(41 + 19) bits × 64 = 480 B`).
pub fn vm_cache_bytes(entries: usize) -> usize {
    entries * (VM_CACHE_TAG_BITS + VM_ACCESS_BITS as usize) / 8
}

/// In-memory VM-Table bytes for a footprint of `pages` pages (8 B/entry;
/// §6.4's `2^(x-9)` for a `2^x`-byte footprint).
pub fn vm_table_bytes(pages: u64) -> u64 {
    pages * 8
}

/// PRT storage in bytes for the Trans-FW comparator (fingerprints only).
pub fn prt_bytes(cfg: TransFwConfig) -> usize {
    cfg.fingerprints * FINGERPRINT_BITS as usize / 8
}

/// A formatted overhead report for documentation output.
pub fn overhead_report(irmb: IrmbConfig) -> String {
    format!(
        "IRMB: {} B ({} bases x {} offsets; {:.1}% of L2 TLB area per CACTI)\n\
         VM-Cache: {} B (64 entries; {:.2}% of a 32KB L1 per CACTI)\n\
         VM-Table: 8 B/page ({:.1}% of a 4KB-page footprint)\n\
         Trans-FW PRT (iso-overhead): {} B for 443 fingerprints",
        irmb_bytes(irmb),
        irmb.bases,
        irmb.offsets_per_base,
        IRMB_AREA_VS_L2_TLB * 100.0,
        vm_cache_bytes(64),
        VM_CACHE_AREA_VS_L1 * 100.0,
        100.0 * 8.0 / 4096.0,
        prt_bytes(TransFwConfig::default()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irmb_matches_paper_720_bytes() {
        assert_eq!(irmb_bytes(IrmbConfig::default()), 720);
    }

    #[test]
    fn vm_cache_matches_paper_480_bytes() {
        assert_eq!(vm_cache_bytes(64), 480);
    }

    #[test]
    fn vm_table_matches_paper_ratio() {
        // 2^x footprint → 2^(x-12) pages → 2^(x-9) bytes.
        let x = 30u32; // 1 GiB
        let pages = 1u64 << (x - 12);
        assert_eq!(vm_table_bytes(pages), 1 << (x - 9));
        // 0.2% of the footprint (§6.4).
        let ratio = vm_table_bytes(pages) as f64 / (1u64 << x) as f64;
        assert!((ratio - 0.002).abs() < 0.001);
    }

    #[test]
    fn prt_is_iso_overhead_with_irmb() {
        // 443 fingerprints × 13 bits ≈ 719 B ≤ the IRMB's 720 B budget.
        let prt = prt_bytes(TransFwConfig::default());
        assert!(prt <= 720, "{prt}");
        assert!(prt >= 700, "{prt}");
    }

    #[test]
    fn report_mentions_each_structure() {
        let r = overhead_report(IrmbConfig::default());
        assert!(r.contains("IRMB: 720 B"));
        assert!(r.contains("VM-Cache: 480 B"));
        assert!(r.contains("443 fingerprints"));
    }
}
