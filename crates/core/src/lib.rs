//! IDYLL — In-PTE DirectorY and Lazy invaLidation.
//!
//! This crate implements the paper's primary contribution (MICRO '23, Li et
//! al.), as four cooperating mechanisms:
//!
//! * [`directory::InPteDirectory`] — the software-managed directory that
//!   stores per-GPU access bits in the unused bits 62–52 of host-side PTEs
//!   (§6.2), so invalidations are sent only to GPUs that may hold a valid
//!   mapping instead of being broadcast;
//! * [`irmb::Irmb`] — the Invalidation Request Merging Buffer (§6.3), a
//!   720-byte per-GPU structure that buffers incoming PTE-invalidation
//!   requests in base/offset-compressed merged entries and lazily writes
//!   them back to the local page table;
//! * [`vm_table::VmDirectory`] — the IDYLL-InMem alternative (§6.4): an
//!   in-memory VM-Table of access bits fronted by a 64-entry 4-way
//!   VM-Cache, for systems whose PTE unused bits are reserved;
//! * [`transfw::TransFw`] — a reimplementation of the Trans-FW comparator
//!   (§7.5): fingerprint-directed remote page-table forwarding.
//!
//! The crate holds pure mechanism: data structures with precise insertion,
//! eviction and lookup semantics. Timing and protocol integration live in
//! `mgpu-system`.
//!
//! # Example
//!
//! ```
//! use idyll_core::irmb::{Irmb, IrmbConfig, InsertOutcome};
//! use vm_model::Vpn;
//!
//! let mut irmb = Irmb::new(IrmbConfig::default());
//! assert_eq!(irmb.insert(Vpn(0x1000)), InsertOutcome::NewEntry);
//! assert_eq!(irmb.insert(Vpn(0x1001)), InsertOutcome::Merged);
//! assert!(irmb.lookup(Vpn(0x1001)));
//! ```

pub mod area;
pub mod directory;
pub mod irmb;
pub mod transfw;
pub mod vm_table;
