//! IDYLL-InMem (§6.4): the VM-Table in-memory directory and its VM-Cache.
//!
//! When the PTE unused bits are reserved for other purposes, the directory
//! moves to a dedicated in-memory table: each 64-bit entry holds a 45-bit
//! VPN and 19 GPU access bits (hashed `gpu % 19` beyond 19 GPUs). A
//! hardware-managed 64-entry 4-way VM-Cache with write-allocate/write-back
//! and LRU absorbs most lookups; the paper reports a 60.2 % average hit
//! rate.

use mem_model::assoc::{Inserted, SetAssoc};
use mem_model::gpuset::GpuSet;
use mem_model::interconnect::GpuId;
use sim_engine::collections::DetHashMap;
use vm_model::addr::Vpn;

/// Number of access bits per VM-Table entry (19 in the paper).
pub const VM_ACCESS_BITS: u32 = 19;

/// A cached VM-Table line: the access-bit vector plus a dirty flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VmLine {
    bits: u32,
    dirty: bool,
}

/// Outcome of a VM-Cache-mediated directory operation, for timing: a miss
/// costs one memory access to the VM-Table; an eviction of a dirty line
/// costs a write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmAccess {
    /// Whether the VM-Cache supplied the entry.
    pub cache_hit: bool,
    /// Whether a dirty line was written back to memory.
    pub writeback: bool,
}

/// The IDYLL-InMem directory: VM-Table + VM-Cache.
///
/// # Example
///
/// ```
/// use idyll_core::vm_table::VmDirectory;
/// use vm_model::Vpn;
///
/// let mut dir = VmDirectory::new(4);
/// dir.record_access(Vpn(0x42), 2);
/// let (targets, _timing) = dir.invalidation_targets(Vpn(0x42), 2);
/// assert!(targets.contains(2));
/// ```
#[derive(Debug, Clone)]
pub struct VmDirectory {
    /// The in-memory VM-Table: authoritative access bits per VPN.
    table: DetHashMap<Vpn, u32>,
    /// The VM-Cache: 64 entries, 4-way (16 sets), LRU, write-back.
    cache: SetAssoc<VmLine>,
    n_gpus: usize,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl VmDirectory {
    /// Creates the directory for `n_gpus` GPUs with the paper's VM-Cache
    /// geometry (64 entries, 4-way).
    pub fn new(n_gpus: usize) -> Self {
        Self::with_cache_geometry(n_gpus, 64, 4)
    }

    /// Creates the directory with a custom VM-Cache geometry.
    ///
    /// # Panics
    /// Panics unless `entries` divides evenly by `ways`.
    pub fn with_cache_geometry(n_gpus: usize, entries: usize, ways: usize) -> Self {
        assert!(entries.is_multiple_of(ways));
        VmDirectory {
            table: DetHashMap::default(),
            cache: SetAssoc::new(entries / ways, ways),
            n_gpus,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The paper's hash: access bit for `gpu` is `gpu % 19`.
    #[inline]
    fn bit_of(gpu: GpuId) -> u32 {
        // simlint: allow(lossy-cast) — GPU ids are single digits; the modulo wraps anyway
        (gpu as u32) % VM_ACCESS_BITS
    }

    /// Fetches the line for `vpn` into the cache (write-allocate) and
    /// returns `(bits, timing)`.
    fn load(&mut self, vpn: Vpn) -> (u32, VmAccess) {
        if let Some(line) = self.cache.get(vpn.0) {
            self.hits += 1;
            return (
                line.bits,
                VmAccess {
                    cache_hit: true,
                    writeback: false,
                },
            );
        }
        self.misses += 1;
        // Miss: read from the VM-Table (absent entry ⇒ first access: zeros,
        // registered in the cache per §6.4).
        let bits = self.table.get(&vpn).copied().unwrap_or(0);
        let mut writeback = false;
        if let Inserted::Evicted { tag, value } =
            self.cache.insert(vpn.0, VmLine { bits, dirty: false })
        {
            if value.dirty {
                self.table.insert(Vpn(tag), value.bits);
                self.writebacks += 1;
                writeback = true;
            }
        }
        (
            bits,
            VmAccess {
                cache_hit: false,
                writeback,
            },
        )
    }

    fn store(&mut self, vpn: Vpn, bits: u32) {
        let line = self
            .cache
            .get_mut(vpn.0)
            // simlint: allow(hot-path-panic) — private helper with a load-before-store call discipline; the line was faulted in by the preceding load
            .expect("store follows load: line resident");
        line.bits = bits;
        line.dirty = true;
    }

    /// Records that `gpu` established a mapping for `vpn` (far-fault
    /// resolution path: the VM-Cache is checked/updated in parallel with the
    /// host page-table walk).
    pub fn record_access(&mut self, vpn: Vpn, gpu: GpuId) -> VmAccess {
        let (bits, timing) = self.load(vpn);
        self.store(vpn, bits | (1 << Self::bit_of(gpu)));
        timing
    }

    /// Migration-request lookup: returns the set of GPUs to invalidate
    /// (superset semantics identical to the in-PTE directory) and clears all
    /// access bits except the initiator's (§6.4 execution flow).
    pub fn invalidation_targets(&mut self, vpn: Vpn, initiator: GpuId) -> (GpuSet, VmAccess) {
        let (bits, timing) = self.load(vpn);
        let mut set = GpuSet::empty();
        for gpu in 0..self.n_gpus {
            if bits & (1 << Self::bit_of(gpu)) != 0 {
                set.insert(gpu);
            }
        }
        self.store(vpn, bits & (1 << Self::bit_of(initiator)));
        (set, timing)
    }

    /// VM-Cache hit rate in `[0,1]` (the paper observes ≈ 0.602).
    pub fn cache_hit_rate(&self) -> f64 {
        sim_engine::stats::hit_rate(self.hits, self.misses)
    }

    /// VM-Cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// VM-Cache misses (VM-Table memory accesses).
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }

    /// Dirty write-backs to the VM-Table.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// VM-Table resident entries (distinct pages ever spilled from cache).
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Space the VM-Table would occupy in bytes (8 bytes per tracked page) —
    /// the §6.4 overhead figure of 0.2 % of the footprint.
    pub fn table_bytes_for(pages: u64) -> u64 {
        pages * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_targets() {
        let mut dir = VmDirectory::new(4);
        dir.record_access(Vpn(1), 0);
        dir.record_access(Vpn(1), 3);
        let (targets, _) = dir.invalidation_targets(Vpn(1), 3);
        assert_eq!(targets.iter().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn targets_clear_all_but_initiator() {
        let mut dir = VmDirectory::new(4);
        dir.record_access(Vpn(1), 0);
        dir.record_access(Vpn(1), 1);
        dir.record_access(Vpn(1), 2);
        let (t1, _) = dir.invalidation_targets(Vpn(1), 2);
        assert_eq!(t1.len(), 3);
        // After clearing, only the initiator's bit remains.
        let (t2, _) = dir.invalidation_targets(Vpn(1), 2);
        assert_eq!(t2.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn unknown_page_is_empty_and_gets_registered() {
        let mut dir = VmDirectory::new(4);
        let (targets, timing) = dir.invalidation_targets(Vpn(0x77), 1);
        assert!(targets.is_empty());
        assert!(!timing.cache_hit);
        // Second touch hits the cache.
        let (_, timing2) = dir.invalidation_targets(Vpn(0x77), 1);
        assert!(timing2.cache_hit);
    }

    #[test]
    fn hash_aliases_beyond_19_gpus() {
        let mut dir = VmDirectory::new(32);
        dir.record_access(Vpn(5), 19); // bit 0, aliases GPU 0
        let (targets, _) = dir.invalidation_targets(Vpn(5), 19);
        assert!(targets.contains(19), "no false negatives");
        assert!(targets.contains(0), "alias is a false positive");
    }

    #[test]
    fn cache_evicts_dirty_lines_to_table() {
        // Tiny cache: 1 set x 2 ways, to force eviction.
        let mut dir = VmDirectory::with_cache_geometry(4, 2, 2);
        dir.record_access(Vpn(1), 0);
        dir.record_access(Vpn(2), 1);
        // Third distinct page evicts the LRU dirty line into the table.
        dir.record_access(Vpn(3), 2);
        assert_eq!(dir.writebacks(), 1);
        assert_eq!(dir.table_len(), 1);
        // The spilled page's bits survive the round-trip.
        let (targets, timing) = dir.invalidation_targets(Vpn(1), 0);
        assert!(targets.contains(0));
        assert!(!timing.cache_hit, "had to reload from VM-Table");
    }

    #[test]
    fn hit_rate_accounting() {
        let mut dir = VmDirectory::new(4);
        dir.record_access(Vpn(9), 0); // miss
        dir.record_access(Vpn(9), 1); // hit
        dir.record_access(Vpn(9), 2); // hit
        assert_eq!(dir.cache_misses(), 1);
        assert_eq!(dir.cache_hits(), 2);
        assert!((dir.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_formula() {
        // 2^x footprint → 2^(x-12) pages → 2^(x-9) bytes (§6.4).
        let pages = 1u64 << 20; // 4 GiB footprint
        assert_eq!(VmDirectory::table_bytes_for(pages), 1 << 23);
    }
}
