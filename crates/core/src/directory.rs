//! The in-PTE directory (§6.2).
//!
//! The host-side page table already holds the authoritative translation for
//! every page; the directory adds *which GPUs hold a local copy of that
//! translation* by repurposing the architecturally unused PTE bits 62–52 as
//! access bits. With more GPUs than bits, the modular hash
//! `h(gpu) = gpu % m + 52` folds several GPUs onto one bit — producing only
//! *false positives* (extra invalidations), never false negatives, which is
//! the directory's correctness obligation.

use mem_model::gpuset::GpuSet;
use mem_model::interconnect::GpuId;
use vm_model::pte::{Pte, UNUSED_HI_COUNT, UNUSED_HI_LO};

/// Configuration of the in-PTE directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryConfig {
    /// Number of unused PTE bits used as access bits (`m` in the paper's
    /// hash). The default design uses all 11 high unused bits; §7.2
    /// evaluates a constrained variant with only 4.
    pub access_bits: u32,
    /// Number of GPUs in the system.
    pub n_gpus: usize,
}

impl DirectoryConfig {
    /// The paper's default: 11 access bits.
    pub fn new(n_gpus: usize) -> Self {
        DirectoryConfig {
            access_bits: UNUSED_HI_COUNT,
            n_gpus,
        }
    }

    /// The constrained variant of §7.2 with `bits` access bits.
    ///
    /// # Panics
    /// Panics if `bits` is zero or exceeds the 11 available unused bits.
    pub fn with_access_bits(n_gpus: usize, bits: u32) -> Self {
        assert!(
            (1..=UNUSED_HI_COUNT).contains(&bits),
            "1..=11 bits available"
        );
        DirectoryConfig {
            access_bits: bits,
            n_gpus,
        }
    }

    /// The paper's hash: `h(gpu) = gpu % m + 52`, returning an absolute PTE
    /// bit position.
    #[inline]
    pub fn bit_of(&self, gpu: GpuId) -> u32 {
        // simlint: allow(lossy-cast) — GPU ids are single digits; the modulo wraps anyway
        (gpu as u32) % self.access_bits + UNUSED_HI_LO
    }
}

/// The in-PTE directory: stateless logic over host-side PTE access bits.
///
/// # Example
///
/// ```
/// use idyll_core::directory::{DirectoryConfig, InPteDirectory};
/// use vm_model::Pte;
///
/// let dir = InPteDirectory::new(DirectoryConfig::new(4));
/// let mut pte = Pte::new_mapped(1, true);
/// dir.record_access(&mut pte, 2);
/// let targets = dir.invalidation_targets(&pte);
/// assert!(targets.contains(2));
/// assert_eq!(targets.len(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct InPteDirectory {
    config: DirectoryConfig,
}

impl InPteDirectory {
    /// Creates the directory logic for `config`.
    pub fn new(config: DirectoryConfig) -> Self {
        InPteDirectory { config }
    }

    /// Configuration in force.
    pub fn config(&self) -> DirectoryConfig {
        self.config
    }

    /// Marks `gpu` as holding a valid mapping: called when the host
    /// resolves a far fault from `gpu` (the replayed translation will
    /// populate that GPU's local page table).
    pub fn record_access(&self, pte: &mut Pte, gpu: GpuId) {
        pte.set_unused_bit(self.config.bit_of(gpu), true);
    }

    /// Whether `gpu`'s (hashed) access bit is set. A `true` may be a false
    /// positive when several GPUs share the bit.
    pub fn may_hold(&self, pte: &Pte, gpu: GpuId) -> bool {
        pte.unused_bit(self.config.bit_of(gpu))
    }

    /// The set of GPUs that must receive an invalidation request for this
    /// PTE: every GPU whose hashed bit is set. This is a superset of the
    /// actual holders (hash aliasing ⇒ false positives only).
    pub fn invalidation_targets(&self, pte: &Pte) -> GpuSet {
        let mut set = GpuSet::empty();
        for gpu in 0..self.config.n_gpus {
            if self.may_hold(pte, gpu) {
                set.insert(gpu);
            }
        }
        set
    }

    /// Clears all access bits; called when the invalidations are sent, since
    /// every targeted remote mapping is about to be destroyed (§6.2 lookup
    /// procedure).
    pub fn clear(&self, pte: &mut Pte) {
        for bit in 0..self.config.access_bits {
            pte.set_unused_bit(UNUSED_HI_LO + bit, false);
        }
    }

    /// Whether any GPU may hold the mapping.
    pub fn any_holder(&self, pte: &Pte) -> bool {
        !self.invalidation_targets(pte).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir4() -> InPteDirectory {
        InPteDirectory::new(DirectoryConfig::new(4))
    }

    #[test]
    fn hash_matches_paper_example() {
        // Paper §6.2: in the default 4-GPU system, unused bits 55–52 of the
        // PTE correspond to the access bits of GPU3–GPU0.
        let cfg = DirectoryConfig::new(4);
        assert_eq!(cfg.bit_of(0), 52);
        assert_eq!(cfg.bit_of(1), 53);
        assert_eq!(cfg.bit_of(2), 54);
        assert_eq!(cfg.bit_of(3), 55);
    }

    #[test]
    fn record_then_target_exact_without_aliasing() {
        let dir = dir4();
        let mut pte = Pte::new_mapped(1, true);
        assert!(dir.invalidation_targets(&pte).is_empty());
        dir.record_access(&mut pte, 1);
        dir.record_access(&mut pte, 3);
        let t = dir.invalidation_targets(&pte);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!(dir.may_hold(&pte, 1));
        assert!(!dir.may_hold(&pte, 0));
    }

    #[test]
    fn clear_resets_all_bits() {
        let dir = dir4();
        let mut pte = Pte::new_mapped(1, true);
        dir.record_access(&mut pte, 0);
        dir.record_access(&mut pte, 2);
        assert!(dir.any_holder(&pte));
        dir.clear(&mut pte);
        assert!(!dir.any_holder(&pte));
        assert!(pte.is_valid(), "clear touches only access bits");
    }

    #[test]
    fn aliasing_produces_false_positives_never_negatives() {
        // 16 GPUs hashed onto 11 bits: GPUs 0 and 11 share bit 52.
        let dir = InPteDirectory::new(DirectoryConfig::new(16));
        let mut pte = Pte::new_mapped(1, true);
        dir.record_access(&mut pte, 11);
        let targets = dir.invalidation_targets(&pte);
        // The actual holder is always targeted (no false negatives)...
        assert!(targets.contains(11));
        // ...and its alias is a false positive.
        assert!(targets.contains(0));
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn four_bit_variant_aliases_within_four() {
        // §7.2: 4 unused bits. 8 GPUs → GPUs g and g+4 share a bit.
        let dir = InPteDirectory::new(DirectoryConfig::with_access_bits(8, 4));
        let mut pte = Pte::new_mapped(1, true);
        dir.record_access(&mut pte, 6);
        let targets = dir.invalidation_targets(&pte);
        assert_eq!(targets.iter().collect::<Vec<_>>(), vec![2, 6]);
    }

    #[test]
    fn all_gpus_recorded_targets_everyone() {
        let dir = InPteDirectory::new(DirectoryConfig::new(32));
        let mut pte = Pte::new_mapped(1, true);
        for g in 0..32 {
            dir.record_access(&mut pte, g);
        }
        assert_eq!(dir.invalidation_targets(&pte).len(), 32);
    }

    #[test]
    #[should_panic(expected = "1..=11 bits")]
    fn too_many_access_bits_panics() {
        let _ = DirectoryConfig::with_access_bits(4, 12);
    }
}
