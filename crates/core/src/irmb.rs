//! The Invalidation Request Merging Buffer (§6.3).
//!
//! The IRMB is a per-GPU hardware buffer that absorbs incoming PTE
//! invalidation requests so they do not contend with demand TLB misses for
//! page-walk resources. It exploits the spatial locality of migrations:
//! invalidation VPNs are partitioned into a 36-bit **base** (radix levels
//! L5–L2) and a 9-bit **offset** (L1); requests sharing a base coalesce into
//! one *merged entry* (default geometry: 32 bases × 16 offsets = 720 bytes,
//! 0.9 % of L2 TLB area by CACTI).
//!
//! Lookups run in parallel with the L2 TLB: a demand miss that *hits* the
//! IRMB must bypass the local page-table walk (the PTE is stale) and
//! far-fault directly to the host — this is both a correctness requirement
//! and, per §7.1, an additional performance win over zero-latency
//! invalidation.

use vm_model::addr::Vpn;

/// Replacement policy for full merged-entry arrays.
///
/// The paper chooses LRU because "if a page is recently migrated, there is
/// a high probability that its neighboring pages will be migrated later";
/// FIFO is provided as the ablation point for that design argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IrmbReplacement {
    /// Evict the least-recently-touched merged entry (the paper's design).
    #[default]
    Lru,
    /// Evict the oldest-created merged entry (ablation).
    Fifo,
}

/// Geometry of the IRMB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrmbConfig {
    /// Number of merged entries (bases). Default 32.
    pub bases: usize,
    /// Offsets per merged entry. Default 16.
    pub offsets_per_base: usize,
    /// Merged-entry replacement policy.
    pub replacement: IrmbReplacement,
}

impl Default for IrmbConfig {
    fn default() -> Self {
        IrmbConfig {
            bases: 32,
            offsets_per_base: 16,
            replacement: IrmbReplacement::Lru,
        }
    }
}

impl IrmbConfig {
    /// A named geometry `(bases, offsets)`, as swept in Figure 15.
    pub fn new(bases: usize, offsets_per_base: usize) -> Self {
        assert!(bases > 0 && offsets_per_base > 0);
        IrmbConfig {
            bases,
            offsets_per_base,
            replacement: IrmbReplacement::Lru,
        }
    }

    /// The same geometry with a different replacement policy.
    pub fn with_replacement(mut self, replacement: IrmbReplacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Storage footprint in bits: each merged entry holds a 36-bit base and
    /// `offsets` 9-bit offsets (§6.3 overhead analysis).
    pub fn size_bits(&self) -> usize {
        self.bases * (36 + 9 * self.offsets_per_base)
    }
}

/// One merged entry: a base plus the set of pending 9-bit offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedEntry {
    /// The shared VPN base (levels L5–L2).
    pub base: u64,
    /// Pending offsets, in insertion order.
    pub offsets: Vec<u16>,
    stamp: u64,
    created: u64,
}

impl MergedEntry {
    /// The full VPNs pending in this entry.
    pub fn vpns(&self) -> impl Iterator<Item = Vpn> + '_ {
        self.offsets
            .iter()
            .map(move |&off| Vpn::from_irmb(self.base, off))
    }
}

/// What an insertion did, including any invalidations that must now be
/// propagated to the local page table (every eviction triggers write-back,
/// §6.3 "IRMB insertion and eviction").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The offset joined an existing merged entry.
    Merged,
    /// The VPN was already pending — nothing to do.
    AlreadyPresent,
    /// A fresh merged entry was created in a free slot.
    NewEntry,
    /// All bases were busy: the LRU merged entry was evicted to make room.
    /// Its pending invalidations must be written back to the page table as
    /// one batch.
    EvictedLru(MergedEntry),
    /// The matching entry's offset list was full: its offsets were evicted
    /// (write-back batch) and the entry restarted with the new offset.
    EvictedOffsets(MergedEntry),
}

/// The Invalidation Request Merging Buffer.
///
/// # Example
///
/// ```
/// use idyll_core::irmb::{Irmb, IrmbConfig, InsertOutcome};
/// use vm_model::Vpn;
///
/// let mut irmb = Irmb::new(IrmbConfig::new(2, 2));
/// irmb.insert(Vpn(0x1000));
/// assert!(irmb.lookup(Vpn(0x1000)));
/// // The arrival of a new mapping removes the pending invalidation.
/// assert!(irmb.remove(Vpn(0x1000)));
/// assert!(!irmb.lookup(Vpn(0x1000)));
/// ```
#[derive(Debug, Clone)]
pub struct Irmb {
    entries: Vec<MergedEntry>,
    config: IrmbConfig,
    clock: u64,
    // Statistics (Figure 13/15 inputs).
    inserts: u64,
    merges: u64,
    lru_evictions: u64,
    offset_evictions: u64,
    lookup_hits: u64,
    lookup_misses: u64,
    removed_by_mapping: u64,
}

impl Irmb {
    /// Creates an empty IRMB.
    pub fn new(config: IrmbConfig) -> Self {
        Irmb {
            entries: Vec::with_capacity(config.bases),
            config,
            clock: 0,
            inserts: 0,
            merges: 0,
            lru_evictions: 0,
            offset_evictions: 0,
            lookup_hits: 0,
            lookup_misses: 0,
            removed_by_mapping: 0,
        }
    }

    /// Geometry.
    pub fn config(&self) -> IrmbConfig {
        self.config
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Inserts the invalidation request for `vpn` (called when the GPU
    /// receives an invalidation message from the UVM driver; the TLB
    /// shootdown has already happened eagerly).
    pub fn insert(&mut self, vpn: Vpn) -> InsertOutcome {
        self.inserts += 1;
        let stamp = self.tick();
        let base = vpn.irmb_base();
        let offset = vpn.irmb_offset();
        if let Some(idx) = self.entries.iter().position(|e| e.base == base) {
            let entry = &mut self.entries[idx];
            entry.stamp = stamp;
            if entry.offsets.contains(&offset) {
                return InsertOutcome::AlreadyPresent;
            }
            if entry.offsets.len() == self.config.offsets_per_base {
                // Offset list full: evict all offsets as a batch, keep the
                // entry for the newcomer (§6.3 second eviction rule).
                self.offset_evictions += 1;
                let evicted = MergedEntry {
                    base,
                    // simlint: allow(hot-path-alloc) — one-word offsets list created only on entry turnover, bounded by IRMB geometry; merges reuse the existing list
                    offsets: std::mem::replace(&mut entry.offsets, vec![offset]),
                    stamp,
                    created: stamp,
                };
                return InsertOutcome::EvictedOffsets(evicted);
            }
            entry.offsets.push(offset);
            self.merges += 1;
            return InsertOutcome::Merged;
        }
        if self.entries.len() < self.config.bases {
            self.entries.push(MergedEntry {
                base,
                // simlint: allow(hot-path-alloc) — warmup-only: at most config.bases entries are ever created
                offsets: vec![offset],
                stamp,
                created: stamp,
            });
            return InsertOutcome::NewEntry;
        }
        // All bases busy: evict a merged entry (§6.3 first rule; LRU by
        // default, FIFO as an ablation).
        self.lru_evictions += 1;
        // simlint: allow(hot-path-panic) — config.bases ≥ 1 is validated at construction, so the victim scan is over a non-empty table
        let victim = self.victim_index().expect("bases > 0");
        let evicted = std::mem::replace(
            &mut self.entries[victim],
            MergedEntry {
                base,
                // simlint: allow(hot-path-alloc) — one-word offsets list created only on LRU entry turnover, bounded by IRMB geometry
                offsets: vec![offset],
                stamp,
                created: stamp,
            },
        );
        InsertOutcome::EvictedLru(evicted)
    }

    /// Checks whether an invalidation for `vpn` is pending. Searched in
    /// parallel with the L2 TLB on every demand miss; a hit means the local
    /// PTE is stale and the request must far-fault directly.
    pub fn lookup(&mut self, vpn: Vpn) -> bool {
        let hit = self.contains(vpn);
        if hit {
            self.lookup_hits += 1;
        } else {
            self.lookup_misses += 1;
        }
        hit
    }

    /// Presence probe without statistics.
    pub fn contains(&self, vpn: Vpn) -> bool {
        let base = vpn.irmb_base();
        let offset = vpn.irmb_offset();
        self.entries
            .iter()
            .any(|e| e.base == base && e.offsets.contains(&offset))
    }

    /// Removes the pending invalidation for `vpn`, if present. Called when
    /// a new mapping for the page arrives: the PTE will be overwritten
    /// directly, making the buffered invalidation moot (§6.3 lookup flow).
    /// Empty merged entries are reclaimed.
    pub fn remove(&mut self, vpn: Vpn) -> bool {
        let base = vpn.irmb_base();
        let offset = vpn.irmb_offset();
        for (i, entry) in self.entries.iter_mut().enumerate() {
            if entry.base == base {
                if let Some(pos) = entry.offsets.iter().position(|&o| o == offset) {
                    entry.offsets.swap_remove(pos);
                    self.removed_by_mapping += 1;
                    if entry.offsets.is_empty() {
                        self.entries.swap_remove(i);
                    }
                    return true;
                }
                return false;
            }
        }
        false
    }

    /// Index of the next replacement victim under the configured policy.
    fn victim_index(&self) -> Option<usize> {
        match self.config.replacement {
            IrmbReplacement::Lru => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i),
            IrmbReplacement::Fifo => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.created)
                .map(|(i, _)| i),
        }
    }

    /// Pops the replacement-victim merged entry for opportunistic write-back
    /// when the page table walker is idle (§6.3 "IRMB writeback", first
    /// rule).
    pub fn pop_lru(&mut self) -> Option<MergedEntry> {
        let victim = self.victim_index()?;
        Some(self.entries.swap_remove(victim))
    }

    /// Drains every merged entry (e.g. at simulation end to flush pending
    /// invalidations).
    pub fn drain(&mut self) -> Vec<MergedEntry> {
        std::mem::take(&mut self.entries)
    }

    /// Number of occupied merged entries.
    pub fn occupied_bases(&self) -> usize {
        self.entries.len()
    }

    /// Total pending invalidations across all entries.
    pub fn pending(&self) -> usize {
        self.entries.iter().map(|e| e.offsets.len()).sum()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insertions received.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Insertions that coalesced into an existing entry.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// LRU merged-entry evictions (capacity pressure on bases).
    pub fn lru_evictions(&self) -> u64 {
        self.lru_evictions
    }

    /// Offset-list-full evictions.
    pub fn offset_evictions(&self) -> u64 {
        self.offset_evictions
    }

    /// Demand-lookup hits (stale-PTE bypasses).
    pub fn lookup_hits(&self) -> u64 {
        self.lookup_hits
    }

    /// Demand-lookup misses.
    pub fn lookup_misses(&self) -> u64 {
        self.lookup_misses
    }

    /// Pending invalidations superseded by new mappings.
    pub fn removed_by_mapping(&self) -> u64 {
        self.removed_by_mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vpn(base: u64, off: u16) -> Vpn {
        Vpn::from_irmb(base, off)
    }

    #[test]
    fn default_geometry_matches_paper() {
        let cfg = IrmbConfig::default();
        assert_eq!(cfg.bases, 32);
        assert_eq!(cfg.offsets_per_base, 16);
        // §6.3: (36 + 144) × 32 / 8 = 720 bytes.
        assert_eq!(cfg.size_bits() / 8, 720);
    }

    #[test]
    fn merge_same_base() {
        let mut irmb = Irmb::new(IrmbConfig::default());
        assert_eq!(irmb.insert(vpn(5, 0)), InsertOutcome::NewEntry);
        assert_eq!(irmb.insert(vpn(5, 1)), InsertOutcome::Merged);
        assert_eq!(irmb.insert(vpn(5, 1)), InsertOutcome::AlreadyPresent);
        assert_eq!(irmb.occupied_bases(), 1);
        assert_eq!(irmb.pending(), 2);
        assert_eq!(irmb.merges(), 1);
    }

    #[test]
    fn distinct_bases_use_distinct_entries() {
        let mut irmb = Irmb::new(IrmbConfig::default());
        irmb.insert(vpn(1, 0));
        irmb.insert(vpn(2, 0));
        assert_eq!(irmb.occupied_bases(), 2);
        assert!(irmb.contains(vpn(1, 0)));
        assert!(irmb.contains(vpn(2, 0)));
        assert!(!irmb.contains(vpn(3, 0)));
        assert!(!irmb.contains(vpn(1, 1)));
    }

    #[test]
    fn lru_eviction_when_bases_full() {
        let mut irmb = Irmb::new(IrmbConfig::new(2, 4));
        irmb.insert(vpn(1, 0));
        irmb.insert(vpn(2, 0));
        irmb.insert(vpn(1, 1)); // refresh base 1 → base 2 is LRU
        match irmb.insert(vpn(3, 0)) {
            InsertOutcome::EvictedLru(e) => {
                assert_eq!(e.base, 2);
                assert_eq!(e.offsets, vec![0]);
            }
            other => panic!("{other:?}"),
        }
        assert!(irmb.contains(vpn(1, 0)));
        assert!(irmb.contains(vpn(3, 0)));
        assert!(!irmb.contains(vpn(2, 0)));
        assert_eq!(irmb.lru_evictions(), 1);
    }

    #[test]
    fn offset_full_evicts_batch_and_keeps_newcomer() {
        let mut irmb = Irmb::new(IrmbConfig::new(4, 2));
        irmb.insert(vpn(7, 0));
        irmb.insert(vpn(7, 1));
        match irmb.insert(vpn(7, 2)) {
            InsertOutcome::EvictedOffsets(e) => {
                assert_eq!(e.base, 7);
                assert_eq!(e.offsets, vec![0, 1]);
            }
            other => panic!("{other:?}"),
        }
        assert!(irmb.contains(vpn(7, 2)));
        assert!(!irmb.contains(vpn(7, 0)));
        assert_eq!(irmb.offset_evictions(), 1);
    }

    #[test]
    fn evicted_entry_reconstructs_full_vpns() {
        let mut irmb = Irmb::new(IrmbConfig::new(1, 4));
        let base = 0xABCDE;
        irmb.insert(vpn(base, 3));
        irmb.insert(vpn(base, 7));
        let entry = irmb.pop_lru().unwrap();
        let vpns: Vec<Vpn> = entry.vpns().collect();
        assert_eq!(vpns, vec![vpn(base, 3), vpn(base, 7)]);
    }

    #[test]
    fn remove_on_new_mapping() {
        let mut irmb = Irmb::new(IrmbConfig::default());
        irmb.insert(vpn(1, 0));
        irmb.insert(vpn(1, 1));
        assert!(irmb.remove(vpn(1, 0)));
        assert!(!irmb.remove(vpn(1, 0)), "already gone");
        assert!(irmb.contains(vpn(1, 1)));
        // Removing the last offset reclaims the merged entry.
        assert!(irmb.remove(vpn(1, 1)));
        assert_eq!(irmb.occupied_bases(), 0);
        assert!(irmb.is_empty());
        assert_eq!(irmb.removed_by_mapping(), 2);
    }

    #[test]
    fn pop_lru_order_and_drain() {
        let mut irmb = Irmb::new(IrmbConfig::new(4, 4));
        irmb.insert(vpn(1, 0));
        irmb.insert(vpn(2, 0));
        irmb.insert(vpn(3, 0));
        irmb.insert(vpn(1, 1)); // refresh 1
        assert_eq!(irmb.pop_lru().unwrap().base, 2);
        assert_eq!(irmb.pop_lru().unwrap().base, 3);
        assert_eq!(irmb.pop_lru().unwrap().base, 1);
        assert!(irmb.pop_lru().is_none());
        irmb.insert(vpn(9, 0));
        let drained = irmb.drain();
        assert_eq!(drained.len(), 1);
        assert!(irmb.is_empty());
    }

    #[test]
    fn lookup_statistics() {
        let mut irmb = Irmb::new(IrmbConfig::default());
        irmb.insert(vpn(1, 0));
        assert!(irmb.lookup(vpn(1, 0)));
        assert!(!irmb.lookup(vpn(1, 1)));
        assert_eq!(irmb.lookup_hits(), 1);
        assert_eq!(irmb.lookup_misses(), 1);
    }

    #[test]
    fn fifo_replacement_evicts_oldest_created() {
        use super::IrmbReplacement;
        let mut irmb = Irmb::new(IrmbConfig::new(2, 4).with_replacement(IrmbReplacement::Fifo));
        irmb.insert(vpn(1, 0));
        irmb.insert(vpn(2, 0));
        // Refresh base 1 — under LRU base 2 would be the victim, but FIFO
        // still evicts base 1 (oldest creation).
        irmb.insert(vpn(1, 1));
        match irmb.insert(vpn(3, 0)) {
            InsertOutcome::EvictedLru(e) => assert_eq!(e.base, 1),
            other => panic!("{other:?}"),
        }
        assert!(irmb.contains(vpn(2, 0)));
    }

    #[test]
    fn figure15_geometries_have_expected_sizes() {
        // (16,8) < (16,16) < (32,8)… not monotone in bytes, but all well
        // under a kilobyte; sanity-check the arithmetic.
        assert_eq!(IrmbConfig::new(16, 8).size_bits(), 16 * (36 + 72));
        assert_eq!(IrmbConfig::new(64, 16).size_bits() / 8, 1440);
    }
}
