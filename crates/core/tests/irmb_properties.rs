//! Property-based tests of the IRMB against a reference set model
//! (DESIGN.md invariant 3: conservation — every inserted invalidation is
//! pending, superseded by a mapping, or emitted through an eviction batch).

use std::collections::HashSet;

use idyll_core::irmb::{InsertOutcome, Irmb, IrmbConfig};
use proptest::prelude::*;
use vm_model::addr::Vpn;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u16),
    Remove(u64, u16),
    Lookup(u64, u16),
    PopLru,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..12, 0u16..24).prop_map(|(b, o)| Op::Insert(b, o)),
            (0u64..12, 0u16..24).prop_map(|(b, o)| Op::Remove(b, o)),
            (0u64..12, 0u16..24).prop_map(|(b, o)| Op::Lookup(b, o)),
            Just(Op::PopLru),
        ],
        1..200,
    )
}

fn geometries() -> impl Strategy<Value = IrmbConfig> {
    prop::sample::select(vec![
        IrmbConfig::new(2, 2),
        IrmbConfig::new(4, 4),
        IrmbConfig::new(32, 16),
        IrmbConfig::new(1, 1),
    ])
}

proptest! {
    #[test]
    fn irmb_tracks_a_set_with_conservation(cfg in geometries(), ops in ops()) {
        let mut irmb = Irmb::new(cfg);
        // Reference model: the set of pending VPNs. Evictions remove their
        // VPNs from the model (they are "written back").
        let mut model: HashSet<Vpn> = HashSet::new();
        let mut written_back: Vec<Vpn> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(b, o) => {
                    let vpn = Vpn::from_irmb(b, o);
                    match irmb.insert(vpn) {
                        InsertOutcome::Merged | InsertOutcome::NewEntry => {
                            prop_assert!(model.insert(vpn));
                        }
                        InsertOutcome::AlreadyPresent => {
                            prop_assert!(model.contains(&vpn));
                        }
                        InsertOutcome::EvictedLru(entry) => {
                            for v in entry.vpns() {
                                prop_assert!(model.remove(&v), "evicted unknown {v}");
                                written_back.push(v);
                            }
                            prop_assert!(model.insert(vpn));
                        }
                        InsertOutcome::EvictedOffsets(entry) => {
                            for v in entry.vpns() {
                                prop_assert!(model.remove(&v), "evicted unknown {v}");
                                written_back.push(v);
                            }
                            prop_assert!(model.insert(vpn));
                        }
                    }
                }
                Op::Remove(b, o) => {
                    let vpn = Vpn::from_irmb(b, o);
                    let removed = irmb.remove(vpn);
                    prop_assert_eq!(removed, model.remove(&vpn));
                }
                Op::Lookup(b, o) => {
                    let vpn = Vpn::from_irmb(b, o);
                    prop_assert_eq!(irmb.lookup(vpn), model.contains(&vpn));
                }
                Op::PopLru => {
                    if let Some(entry) = irmb.pop_lru() {
                        for v in entry.vpns() {
                            prop_assert!(model.remove(&v), "popped unknown {v}");
                            written_back.push(v);
                        }
                    } else {
                        prop_assert!(model.is_empty());
                    }
                }
            }
            // Structural invariants hold after every operation.
            prop_assert_eq!(irmb.pending(), model.len());
            prop_assert!(irmb.occupied_bases() <= cfg.bases);
        }
        // Final drain returns exactly the model's remaining contents.
        let drained: HashSet<Vpn> = irmb.drain().iter().flat_map(|e| e.vpns()).collect();
        prop_assert_eq!(drained, model);
    }

    #[test]
    fn irmb_base_offset_roundtrip(b in 0u64..(1 << 36), o in 0u16..512) {
        let vpn = Vpn::from_irmb(b, o);
        prop_assert_eq!(vpn.irmb_base(), b);
        prop_assert_eq!(vpn.irmb_offset(), o);
    }

    #[test]
    fn offsets_per_entry_never_exceed_geometry(inserts in prop::collection::vec((0u64..4, 0u16..64), 1..200)) {
        let cfg = IrmbConfig::new(4, 8);
        let mut irmb = Irmb::new(cfg);
        for (b, o) in inserts {
            irmb.insert(Vpn::from_irmb(b, o));
            prop_assert!(irmb.pending() <= cfg.bases * cfg.offsets_per_base);
        }
    }
}
