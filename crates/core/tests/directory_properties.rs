//! Property-based tests of the directory mechanisms (DESIGN.md invariant 2:
//! false positives allowed, false negatives never).

use idyll_core::directory::{DirectoryConfig, InPteDirectory};
use idyll_core::vm_table::VmDirectory;
use proptest::prelude::*;
use vm_model::addr::Vpn;
use vm_model::pte::Pte;

proptest! {
    #[test]
    fn in_pte_directory_never_false_negative(
        n_gpus in 1usize..33,
        bits in 1u32..12,
        holders in prop::collection::hash_set(0usize..32, 0..10),
    ) {
        let holders: Vec<usize> = holders.into_iter().filter(|&g| g < n_gpus).collect();
        let dir = InPteDirectory::new(DirectoryConfig::with_access_bits(n_gpus, bits));
        let mut pte = Pte::new_mapped(1, true);
        for &g in &holders {
            dir.record_access(&mut pte, g);
        }
        let targets = dir.invalidation_targets(&pte);
        for &g in &holders {
            prop_assert!(targets.contains(g), "holder {g} missed: {targets}");
        }
        // Superset bound: never more targets than GPUs.
        prop_assert!(targets.len() <= n_gpus);
        // Clearing empties the set.
        dir.clear(&mut pte);
        prop_assert!(dir.invalidation_targets(&pte).is_empty());
        // Clearing never disturbs the mapping itself.
        prop_assert!(pte.is_valid());
        prop_assert_eq!(pte.ppn(), 1);
    }

    #[test]
    fn in_pte_directory_is_exact_without_aliasing(
        holders in prop::collection::hash_set(0usize..11, 0..11),
    ) {
        // With n_gpus <= access bits the hash is injective: no false
        // positives at all.
        let dir = InPteDirectory::new(DirectoryConfig::new(11));
        let mut pte = Pte::new_mapped(1, true);
        for &g in &holders {
            dir.record_access(&mut pte, g);
        }
        let targets: std::collections::HashSet<usize> =
            dir.invalidation_targets(&pte).iter().collect();
        prop_assert_eq!(targets, holders);
    }

    #[test]
    fn vm_directory_never_false_negative(
        n_gpus in 1usize..33,
        pages in prop::collection::vec((0u64..50, 0usize..32), 1..120),
    ) {
        let mut dir = VmDirectory::new(n_gpus);
        let mut model: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (page, gpu) in pages {
            let gpu = gpu % n_gpus;
            dir.record_access(Vpn(page), gpu);
            model.entry(page).or_default().push(gpu);
        }
        for (page, holders) in model {
            let initiator = holders[0];
            let (targets, _) = dir.invalidation_targets(Vpn(page), initiator);
            for g in holders {
                prop_assert!(targets.contains(g), "holder {g} of page {page} missed");
            }
        }
    }

    #[test]
    fn vm_directory_survives_cache_thrashing(
        pages in prop::collection::vec(0u64..5000, 1..300),
    ) {
        // Far more pages than the 64-entry VM-Cache: bits must survive the
        // spill to the VM-Table and back.
        let mut dir = VmDirectory::new(4);
        for &p in &pages {
            dir.record_access(Vpn(p), (p % 4) as usize);
        }
        for &p in &pages {
            let holder = (p % 4) as usize;
            let (targets, _) = dir.invalidation_targets(Vpn(p), holder);
            prop_assert!(targets.contains(holder), "page {p} lost its holder bit");
        }
    }
}
