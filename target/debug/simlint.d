/root/repo/target/debug/simlint: /root/repo/crates/simlint/src/lib.rs /root/repo/crates/simlint/src/main.rs
