/root/repo/target/debug/libsimlint.rlib: /root/repo/crates/simlint/src/lib.rs
