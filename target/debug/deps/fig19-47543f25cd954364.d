/root/repo/target/debug/deps/fig19-47543f25cd954364.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/fig19-47543f25cd954364: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
