/root/repo/target/debug/deps/end_to_end-788f7270695a6d8a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-788f7270695a6d8a.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
