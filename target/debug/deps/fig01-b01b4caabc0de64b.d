/root/repo/target/debug/deps/fig01-b01b4caabc0de64b.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/libfig01-b01b4caabc0de64b.rmeta: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
