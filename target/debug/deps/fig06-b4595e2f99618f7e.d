/root/repo/target/debug/deps/fig06-b4595e2f99618f7e.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/libfig06-b4595e2f99618f7e.rmeta: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
