/root/repo/target/debug/deps/fig02-a04b5d0f27f5e02c.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-a04b5d0f27f5e02c: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
