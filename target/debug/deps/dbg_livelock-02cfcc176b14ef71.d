/root/repo/target/debug/deps/dbg_livelock-02cfcc176b14ef71.d: crates/bench/src/bin/dbg_livelock.rs

/root/repo/target/debug/deps/libdbg_livelock-02cfcc176b14ef71.rmeta: crates/bench/src/bin/dbg_livelock.rs

crates/bench/src/bin/dbg_livelock.rs:
