/root/repo/target/debug/deps/mgpu_sim-fc05699250b292fa.d: crates/mgpu-system/src/bin/mgpu-sim.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu_sim-fc05699250b292fa.rmeta: crates/mgpu-system/src/bin/mgpu-sim.rs Cargo.toml

crates/mgpu-system/src/bin/mgpu-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
