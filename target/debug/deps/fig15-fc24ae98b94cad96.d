/root/repo/target/debug/deps/fig15-fc24ae98b94cad96.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/libfig15-fc24ae98b94cad96.rmeta: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
