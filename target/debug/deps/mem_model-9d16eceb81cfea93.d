/root/repo/target/debug/deps/mem_model-9d16eceb81cfea93.d: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs Cargo.toml

/root/repo/target/debug/deps/libmem_model-9d16eceb81cfea93.rmeta: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs Cargo.toml

crates/mem-model/src/lib.rs:
crates/mem-model/src/assoc.rs:
crates/mem-model/src/cache.rs:
crates/mem-model/src/dram.rs:
crates/mem-model/src/gpuset.rs:
crates/mem-model/src/interconnect.rs:
crates/mem-model/src/mshr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
