/root/repo/target/debug/deps/fig18-2882534bf97ae860.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/libfig18-2882534bf97ae860.rmeta: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
