/root/repo/target/debug/deps/fig17-85f320a684be7a26.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-85f320a684be7a26: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
