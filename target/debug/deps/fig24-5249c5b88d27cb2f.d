/root/repo/target/debug/deps/fig24-5249c5b88d27cb2f.d: crates/bench/src/bin/fig24.rs Cargo.toml

/root/repo/target/debug/deps/libfig24-5249c5b88d27cb2f.rmeta: crates/bench/src/bin/fig24.rs Cargo.toml

crates/bench/src/bin/fig24.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
