/root/repo/target/debug/deps/pipes-aec89be44b74aafc.d: crates/bench/src/bin/pipes.rs

/root/repo/target/debug/deps/libpipes-aec89be44b74aafc.rmeta: crates/bench/src/bin/pipes.rs

crates/bench/src/bin/pipes.rs:
