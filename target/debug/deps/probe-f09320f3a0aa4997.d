/root/repo/target/debug/deps/probe-f09320f3a0aa4997.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/libprobe-f09320f3a0aa4997.rmeta: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
