/root/repo/target/debug/deps/fig07-bd1f1f4e3b3c1693.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-bd1f1f4e3b3c1693: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
