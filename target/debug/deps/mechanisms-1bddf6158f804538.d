/root/repo/target/debug/deps/mechanisms-1bddf6158f804538.d: tests/mechanisms.rs

/root/repo/target/debug/deps/libmechanisms-1bddf6158f804538.rmeta: tests/mechanisms.rs

tests/mechanisms.rs:
