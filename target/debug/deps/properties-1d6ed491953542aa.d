/root/repo/target/debug/deps/properties-1d6ed491953542aa.d: tests/properties.rs

/root/repo/target/debug/deps/properties-1d6ed491953542aa: tests/properties.rs

tests/properties.rs:
