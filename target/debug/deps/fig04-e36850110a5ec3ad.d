/root/repo/target/debug/deps/fig04-e36850110a5ec3ad.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/libfig04-e36850110a5ec3ad.rmeta: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
