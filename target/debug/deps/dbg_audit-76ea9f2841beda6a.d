/root/repo/target/debug/deps/dbg_audit-76ea9f2841beda6a.d: crates/bench/src/bin/dbg_audit.rs

/root/repo/target/debug/deps/dbg_audit-76ea9f2841beda6a: crates/bench/src/bin/dbg_audit.rs

crates/bench/src/bin/dbg_audit.rs:
