/root/repo/target/debug/deps/pipes-97bf9ccd72ef9f85.d: crates/bench/src/bin/pipes.rs

/root/repo/target/debug/deps/pipes-97bf9ccd72ef9f85: crates/bench/src/bin/pipes.rs

crates/bench/src/bin/pipes.rs:
