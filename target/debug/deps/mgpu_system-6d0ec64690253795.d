/root/repo/target/debug/deps/mgpu_system-6d0ec64690253795.d: crates/mgpu-system/src/lib.rs crates/mgpu-system/src/config.rs crates/mgpu-system/src/csv.rs crates/mgpu-system/src/metrics.rs crates/mgpu-system/src/runner.rs crates/mgpu-system/src/system/mod.rs crates/mgpu-system/src/system/data.rs crates/mgpu-system/src/system/host.rs crates/mgpu-system/src/system/migrate.rs crates/mgpu-system/src/system/observe.rs crates/mgpu-system/src/system/translate.rs

/root/repo/target/debug/deps/libmgpu_system-6d0ec64690253795.rmeta: crates/mgpu-system/src/lib.rs crates/mgpu-system/src/config.rs crates/mgpu-system/src/csv.rs crates/mgpu-system/src/metrics.rs crates/mgpu-system/src/runner.rs crates/mgpu-system/src/system/mod.rs crates/mgpu-system/src/system/data.rs crates/mgpu-system/src/system/host.rs crates/mgpu-system/src/system/migrate.rs crates/mgpu-system/src/system/observe.rs crates/mgpu-system/src/system/translate.rs

crates/mgpu-system/src/lib.rs:
crates/mgpu-system/src/config.rs:
crates/mgpu-system/src/csv.rs:
crates/mgpu-system/src/metrics.rs:
crates/mgpu-system/src/runner.rs:
crates/mgpu-system/src/system/mod.rs:
crates/mgpu-system/src/system/data.rs:
crates/mgpu-system/src/system/host.rs:
crates/mgpu-system/src/system/migrate.rs:
crates/mgpu-system/src/system/observe.rs:
crates/mgpu-system/src/system/translate.rs:
