/root/repo/target/debug/deps/fig20-098206a68e0ae3f5.d: crates/bench/src/bin/fig20.rs

/root/repo/target/debug/deps/libfig20-098206a68e0ae3f5.rmeta: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
