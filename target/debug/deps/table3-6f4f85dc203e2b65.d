/root/repo/target/debug/deps/table3-6f4f85dc203e2b65.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-6f4f85dc203e2b65: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
