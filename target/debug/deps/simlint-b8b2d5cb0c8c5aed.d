/root/repo/target/debug/deps/simlint-b8b2d5cb0c8c5aed.d: crates/simlint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsimlint-b8b2d5cb0c8c5aed.rmeta: crates/simlint/src/main.rs Cargo.toml

crates/simlint/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
