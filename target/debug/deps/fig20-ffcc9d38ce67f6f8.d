/root/repo/target/debug/deps/fig20-ffcc9d38ce67f6f8.d: crates/bench/src/bin/fig20.rs

/root/repo/target/debug/deps/fig20-ffcc9d38ce67f6f8: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
