/root/repo/target/debug/deps/fig24-a36b200dc3946210.d: crates/bench/src/bin/fig24.rs Cargo.toml

/root/repo/target/debug/deps/libfig24-a36b200dc3946210.rmeta: crates/bench/src/bin/fig24.rs Cargo.toml

crates/bench/src/bin/fig24.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
