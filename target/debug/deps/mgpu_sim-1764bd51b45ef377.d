/root/repo/target/debug/deps/mgpu_sim-1764bd51b45ef377.d: crates/mgpu-system/src/bin/mgpu-sim.rs

/root/repo/target/debug/deps/libmgpu_sim-1764bd51b45ef377.rmeta: crates/mgpu-system/src/bin/mgpu-sim.rs

crates/mgpu-system/src/bin/mgpu-sim.rs:
