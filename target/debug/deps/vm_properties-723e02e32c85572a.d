/root/repo/target/debug/deps/vm_properties-723e02e32c85572a.d: crates/vm-model/tests/vm_properties.rs

/root/repo/target/debug/deps/libvm_properties-723e02e32c85572a.rmeta: crates/vm-model/tests/vm_properties.rs

crates/vm-model/tests/vm_properties.rs:
