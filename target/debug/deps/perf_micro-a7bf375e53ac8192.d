/root/repo/target/debug/deps/perf_micro-a7bf375e53ac8192.d: crates/bench/src/bin/perf_micro.rs

/root/repo/target/debug/deps/perf_micro-a7bf375e53ac8192: crates/bench/src/bin/perf_micro.rs

crates/bench/src/bin/perf_micro.rs:
