/root/repo/target/debug/deps/mem_model-85eae397dfdbd635.d: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs

/root/repo/target/debug/deps/libmem_model-85eae397dfdbd635.rlib: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs

/root/repo/target/debug/deps/libmem_model-85eae397dfdbd635.rmeta: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs

crates/mem-model/src/lib.rs:
crates/mem-model/src/assoc.rs:
crates/mem-model/src/cache.rs:
crates/mem-model/src/dram.rs:
crates/mem-model/src/gpuset.rs:
crates/mem-model/src/interconnect.rs:
crates/mem-model/src/mshr.rs:
