/root/repo/target/debug/deps/mechanisms-92abff7cfc4b5364.d: tests/mechanisms.rs

/root/repo/target/debug/deps/mechanisms-92abff7cfc4b5364: tests/mechanisms.rs

tests/mechanisms.rs:
