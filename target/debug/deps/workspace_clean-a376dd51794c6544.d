/root/repo/target/debug/deps/workspace_clean-a376dd51794c6544.d: crates/simlint/tests/workspace_clean.rs

/root/repo/target/debug/deps/libworkspace_clean-a376dd51794c6544.rmeta: crates/simlint/tests/workspace_clean.rs

crates/simlint/tests/workspace_clean.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/simlint
