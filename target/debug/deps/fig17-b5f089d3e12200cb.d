/root/repo/target/debug/deps/fig17-b5f089d3e12200cb.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/libfig17-b5f089d3e12200cb.rmeta: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
