/root/repo/target/debug/deps/perf_micro-87dc2a17e68f0cec.d: crates/bench/src/bin/perf_micro.rs

/root/repo/target/debug/deps/libperf_micro-87dc2a17e68f0cec.rmeta: crates/bench/src/bin/perf_micro.rs

crates/bench/src/bin/perf_micro.rs:
