/root/repo/target/debug/deps/fig20-a4d0d43b69fe4f25.d: crates/bench/src/bin/fig20.rs Cargo.toml

/root/repo/target/debug/deps/libfig20-a4d0d43b69fe4f25.rmeta: crates/bench/src/bin/fig20.rs Cargo.toml

crates/bench/src/bin/fig20.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
