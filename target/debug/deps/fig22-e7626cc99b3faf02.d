/root/repo/target/debug/deps/fig22-e7626cc99b3faf02.d: crates/bench/src/bin/fig22.rs

/root/repo/target/debug/deps/fig22-e7626cc99b3faf02: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
