/root/repo/target/debug/deps/ablations-43d59ae4330bf0e4.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-43d59ae4330bf0e4.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
