/root/repo/target/debug/deps/dbg_audit-2df6fd038b7156d6.d: crates/bench/src/bin/dbg_audit.rs

/root/repo/target/debug/deps/libdbg_audit-2df6fd038b7156d6.rmeta: crates/bench/src/bin/dbg_audit.rs

crates/bench/src/bin/dbg_audit.rs:
