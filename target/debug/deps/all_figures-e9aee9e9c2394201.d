/root/repo/target/debug/deps/all_figures-e9aee9e9c2394201.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-e9aee9e9c2394201: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
