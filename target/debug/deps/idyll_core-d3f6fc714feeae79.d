/root/repo/target/debug/deps/idyll_core-d3f6fc714feeae79.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

/root/repo/target/debug/deps/libidyll_core-d3f6fc714feeae79.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/directory.rs:
crates/core/src/irmb.rs:
crates/core/src/transfw.rs:
crates/core/src/vm_table.rs:
