/root/repo/target/debug/deps/sim_engine-4df63028abd47487.d: crates/sim-engine/src/lib.rs crates/sim-engine/src/collections.rs crates/sim-engine/src/event.rs crates/sim-engine/src/metrics.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/resource.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/stats.rs crates/sim-engine/src/time.rs crates/sim-engine/src/trace.rs crates/sim-engine/src/tracelog.rs

/root/repo/target/debug/deps/libsim_engine-4df63028abd47487.rmeta: crates/sim-engine/src/lib.rs crates/sim-engine/src/collections.rs crates/sim-engine/src/event.rs crates/sim-engine/src/metrics.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/resource.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/stats.rs crates/sim-engine/src/time.rs crates/sim-engine/src/trace.rs crates/sim-engine/src/tracelog.rs

crates/sim-engine/src/lib.rs:
crates/sim-engine/src/collections.rs:
crates/sim-engine/src/event.rs:
crates/sim-engine/src/metrics.rs:
crates/sim-engine/src/queue.rs:
crates/sim-engine/src/resource.rs:
crates/sim-engine/src/rng.rs:
crates/sim-engine/src/stats.rs:
crates/sim-engine/src/time.rs:
crates/sim-engine/src/trace.rs:
crates/sim-engine/src/tracelog.rs:
