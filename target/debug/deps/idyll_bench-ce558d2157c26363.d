/root/repo/target/debug/deps/idyll_bench-ce558d2157c26363.d: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

/root/repo/target/debug/deps/idyll_bench-ce558d2157c26363: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

crates/bench/src/lib.rs:
crates/bench/src/grid_metrics.rs:
