/root/repo/target/debug/deps/simlint-3dc104c315bf630e.d: crates/simlint/src/lib.rs

/root/repo/target/debug/deps/libsimlint-3dc104c315bf630e.rlib: crates/simlint/src/lib.rs

/root/repo/target/debug/deps/libsimlint-3dc104c315bf630e.rmeta: crates/simlint/src/lib.rs

crates/simlint/src/lib.rs:
