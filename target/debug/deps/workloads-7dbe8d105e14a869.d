/root/repo/target/debug/deps/workloads-7dbe8d105e14a869.d: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/workloads-7dbe8d105e14a869: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dnn.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/serialize.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/stats.rs:
crates/workloads/src/trace.rs:
