/root/repo/target/debug/deps/system_units-4b7ecb9481de216c.d: crates/mgpu-system/tests/system_units.rs Cargo.toml

/root/repo/target/debug/deps/libsystem_units-4b7ecb9481de216c.rmeta: crates/mgpu-system/tests/system_units.rs Cargo.toml

crates/mgpu-system/tests/system_units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
