/root/repo/target/debug/deps/fig18-39e4b810bbd5bfaa.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/libfig18-39e4b810bbd5bfaa.rmeta: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
