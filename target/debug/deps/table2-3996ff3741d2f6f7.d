/root/repo/target/debug/deps/table2-3996ff3741d2f6f7.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-3996ff3741d2f6f7: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
