/root/repo/target/debug/deps/fig01-33e9ae9678c4929b.d: crates/bench/src/bin/fig01.rs Cargo.toml

/root/repo/target/debug/deps/libfig01-33e9ae9678c4929b.rmeta: crates/bench/src/bin/fig01.rs Cargo.toml

crates/bench/src/bin/fig01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
