/root/repo/target/debug/deps/vm_properties-a29e03fa946282e6.d: crates/vm-model/tests/vm_properties.rs Cargo.toml

/root/repo/target/debug/deps/libvm_properties-a29e03fa946282e6.rmeta: crates/vm-model/tests/vm_properties.rs Cargo.toml

crates/vm-model/tests/vm_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
