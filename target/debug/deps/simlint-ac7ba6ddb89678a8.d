/root/repo/target/debug/deps/simlint-ac7ba6ddb89678a8.d: crates/simlint/src/main.rs

/root/repo/target/debug/deps/libsimlint-ac7ba6ddb89678a8.rmeta: crates/simlint/src/main.rs

crates/simlint/src/main.rs:
