/root/repo/target/debug/deps/mgpu_system-97e580144799b9de.d: crates/mgpu-system/src/lib.rs crates/mgpu-system/src/config.rs crates/mgpu-system/src/csv.rs crates/mgpu-system/src/metrics.rs crates/mgpu-system/src/runner.rs crates/mgpu-system/src/system/mod.rs crates/mgpu-system/src/system/data.rs crates/mgpu-system/src/system/host.rs crates/mgpu-system/src/system/migrate.rs crates/mgpu-system/src/system/observe.rs crates/mgpu-system/src/system/translate.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu_system-97e580144799b9de.rmeta: crates/mgpu-system/src/lib.rs crates/mgpu-system/src/config.rs crates/mgpu-system/src/csv.rs crates/mgpu-system/src/metrics.rs crates/mgpu-system/src/runner.rs crates/mgpu-system/src/system/mod.rs crates/mgpu-system/src/system/data.rs crates/mgpu-system/src/system/host.rs crates/mgpu-system/src/system/migrate.rs crates/mgpu-system/src/system/observe.rs crates/mgpu-system/src/system/translate.rs Cargo.toml

crates/mgpu-system/src/lib.rs:
crates/mgpu-system/src/config.rs:
crates/mgpu-system/src/csv.rs:
crates/mgpu-system/src/metrics.rs:
crates/mgpu-system/src/runner.rs:
crates/mgpu-system/src/system/mod.rs:
crates/mgpu-system/src/system/data.rs:
crates/mgpu-system/src/system/host.rs:
crates/mgpu-system/src/system/migrate.rs:
crates/mgpu-system/src/system/observe.rs:
crates/mgpu-system/src/system/translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
