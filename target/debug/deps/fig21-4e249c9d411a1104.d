/root/repo/target/debug/deps/fig21-4e249c9d411a1104.d: crates/bench/src/bin/fig21.rs

/root/repo/target/debug/deps/libfig21-4e249c9d411a1104.rmeta: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
