/root/repo/target/debug/deps/ablations-3e27e1d083874925.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-3e27e1d083874925: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
