/root/repo/target/debug/deps/fig22-9656fcb890d9f551.d: crates/bench/src/bin/fig22.rs

/root/repo/target/debug/deps/fig22-9656fcb890d9f551: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
