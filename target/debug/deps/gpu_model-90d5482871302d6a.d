/root/repo/target/debug/deps/gpu_model-90d5482871302d6a.d: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs

/root/repo/target/debug/deps/libgpu_model-90d5482871302d6a.rlib: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs

/root/repo/target/debug/deps/libgpu_model-90d5482871302d6a.rmeta: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs

crates/gpu-model/src/lib.rs:
crates/gpu-model/src/cu.rs:
crates/gpu-model/src/gmmu.rs:
crates/gpu-model/src/gpu.rs:
crates/gpu-model/src/scheduler.rs:
