/root/repo/target/debug/deps/directory_properties-2375c42893539329.d: crates/core/tests/directory_properties.rs Cargo.toml

/root/repo/target/debug/deps/libdirectory_properties-2375c42893539329.rmeta: crates/core/tests/directory_properties.rs Cargo.toml

crates/core/tests/directory_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
