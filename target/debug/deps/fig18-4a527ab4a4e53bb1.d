/root/repo/target/debug/deps/fig18-4a527ab4a4e53bb1.d: crates/bench/src/bin/fig18.rs Cargo.toml

/root/repo/target/debug/deps/libfig18-4a527ab4a4e53bb1.rmeta: crates/bench/src/bin/fig18.rs Cargo.toml

crates/bench/src/bin/fig18.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
