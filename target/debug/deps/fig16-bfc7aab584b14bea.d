/root/repo/target/debug/deps/fig16-bfc7aab584b14bea.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/libfig16-bfc7aab584b14bea.rmeta: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
