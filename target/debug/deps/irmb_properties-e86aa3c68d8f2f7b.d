/root/repo/target/debug/deps/irmb_properties-e86aa3c68d8f2f7b.d: crates/core/tests/irmb_properties.rs Cargo.toml

/root/repo/target/debug/deps/libirmb_properties-e86aa3c68d8f2f7b.rmeta: crates/core/tests/irmb_properties.rs Cargo.toml

crates/core/tests/irmb_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
