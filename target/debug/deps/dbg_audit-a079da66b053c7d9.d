/root/repo/target/debug/deps/dbg_audit-a079da66b053c7d9.d: crates/bench/src/bin/dbg_audit.rs

/root/repo/target/debug/deps/libdbg_audit-a079da66b053c7d9.rmeta: crates/bench/src/bin/dbg_audit.rs

crates/bench/src/bin/dbg_audit.rs:
