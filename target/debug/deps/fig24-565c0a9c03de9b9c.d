/root/repo/target/debug/deps/fig24-565c0a9c03de9b9c.d: crates/bench/src/bin/fig24.rs

/root/repo/target/debug/deps/libfig24-565c0a9c03de9b9c.rmeta: crates/bench/src/bin/fig24.rs

crates/bench/src/bin/fig24.rs:
