/root/repo/target/debug/deps/sim_engine-9a6236f242165f16.d: crates/sim-engine/src/lib.rs crates/sim-engine/src/collections.rs crates/sim-engine/src/event.rs crates/sim-engine/src/metrics.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/resource.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/stats.rs crates/sim-engine/src/time.rs crates/sim-engine/src/trace.rs crates/sim-engine/src/tracelog.rs Cargo.toml

/root/repo/target/debug/deps/libsim_engine-9a6236f242165f16.rmeta: crates/sim-engine/src/lib.rs crates/sim-engine/src/collections.rs crates/sim-engine/src/event.rs crates/sim-engine/src/metrics.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/resource.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/stats.rs crates/sim-engine/src/time.rs crates/sim-engine/src/trace.rs crates/sim-engine/src/tracelog.rs Cargo.toml

crates/sim-engine/src/lib.rs:
crates/sim-engine/src/collections.rs:
crates/sim-engine/src/event.rs:
crates/sim-engine/src/metrics.rs:
crates/sim-engine/src/queue.rs:
crates/sim-engine/src/resource.rs:
crates/sim-engine/src/rng.rs:
crates/sim-engine/src/stats.rs:
crates/sim-engine/src/time.rs:
crates/sim-engine/src/trace.rs:
crates/sim-engine/src/tracelog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
