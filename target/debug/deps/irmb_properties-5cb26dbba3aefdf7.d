/root/repo/target/debug/deps/irmb_properties-5cb26dbba3aefdf7.d: crates/core/tests/irmb_properties.rs

/root/repo/target/debug/deps/irmb_properties-5cb26dbba3aefdf7: crates/core/tests/irmb_properties.rs

crates/core/tests/irmb_properties.rs:
