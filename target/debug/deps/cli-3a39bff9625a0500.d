/root/repo/target/debug/deps/cli-3a39bff9625a0500.d: crates/simlint/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-3a39bff9625a0500.rmeta: crates/simlint/tests/cli.rs Cargo.toml

crates/simlint/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_simlint=placeholder:simlint
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/simlint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
