/root/repo/target/debug/deps/dbg_audit-2f4776052a32f495.d: crates/bench/src/bin/dbg_audit.rs Cargo.toml

/root/repo/target/debug/deps/libdbg_audit-2f4776052a32f495.rmeta: crates/bench/src/bin/dbg_audit.rs Cargo.toml

crates/bench/src/bin/dbg_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
