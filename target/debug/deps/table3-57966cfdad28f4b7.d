/root/repo/target/debug/deps/table3-57966cfdad28f4b7.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-57966cfdad28f4b7.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
