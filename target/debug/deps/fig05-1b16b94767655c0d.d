/root/repo/target/debug/deps/fig05-1b16b94767655c0d.d: crates/bench/src/bin/fig05.rs Cargo.toml

/root/repo/target/debug/deps/libfig05-1b16b94767655c0d.rmeta: crates/bench/src/bin/fig05.rs Cargo.toml

crates/bench/src/bin/fig05.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
