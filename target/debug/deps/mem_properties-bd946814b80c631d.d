/root/repo/target/debug/deps/mem_properties-bd946814b80c631d.d: crates/mem-model/tests/mem_properties.rs

/root/repo/target/debug/deps/libmem_properties-bd946814b80c631d.rmeta: crates/mem-model/tests/mem_properties.rs

crates/mem-model/tests/mem_properties.rs:
