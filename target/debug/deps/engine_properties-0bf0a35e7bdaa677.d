/root/repo/target/debug/deps/engine_properties-0bf0a35e7bdaa677.d: crates/sim-engine/tests/engine_properties.rs

/root/repo/target/debug/deps/libengine_properties-0bf0a35e7bdaa677.rmeta: crates/sim-engine/tests/engine_properties.rs

crates/sim-engine/tests/engine_properties.rs:
