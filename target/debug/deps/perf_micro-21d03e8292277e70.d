/root/repo/target/debug/deps/perf_micro-21d03e8292277e70.d: crates/bench/src/bin/perf_micro.rs Cargo.toml

/root/repo/target/debug/deps/libperf_micro-21d03e8292277e70.rmeta: crates/bench/src/bin/perf_micro.rs Cargo.toml

crates/bench/src/bin/perf_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
