/root/repo/target/debug/deps/fig21-240bf8c29f04dc41.d: crates/bench/src/bin/fig21.rs

/root/repo/target/debug/deps/libfig21-240bf8c29f04dc41.rmeta: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
