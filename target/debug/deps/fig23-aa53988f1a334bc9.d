/root/repo/target/debug/deps/fig23-aa53988f1a334bc9.d: crates/bench/src/bin/fig23.rs

/root/repo/target/debug/deps/libfig23-aa53988f1a334bc9.rmeta: crates/bench/src/bin/fig23.rs

crates/bench/src/bin/fig23.rs:
