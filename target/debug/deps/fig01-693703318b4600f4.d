/root/repo/target/debug/deps/fig01-693703318b4600f4.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-693703318b4600f4: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
