/root/repo/target/debug/deps/idyll-4f821084b264605e.d: src/lib.rs

/root/repo/target/debug/deps/libidyll-4f821084b264605e.rlib: src/lib.rs

/root/repo/target/debug/deps/libidyll-4f821084b264605e.rmeta: src/lib.rs

src/lib.rs:
