/root/repo/target/debug/deps/simlint-8ba569fd8c15d205.d: crates/simlint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsimlint-8ba569fd8c15d205.rmeta: crates/simlint/src/main.rs Cargo.toml

crates/simlint/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
