/root/repo/target/debug/deps/fig05-0ddb9752950099a7.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/libfig05-0ddb9752950099a7.rmeta: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
