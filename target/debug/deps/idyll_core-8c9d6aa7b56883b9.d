/root/repo/target/debug/deps/idyll_core-8c9d6aa7b56883b9.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs Cargo.toml

/root/repo/target/debug/deps/libidyll_core-8c9d6aa7b56883b9.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/directory.rs:
crates/core/src/irmb.rs:
crates/core/src/transfw.rs:
crates/core/src/vm_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
