/root/repo/target/debug/deps/fig20-0fe0c4b522bf3822.d: crates/bench/src/bin/fig20.rs

/root/repo/target/debug/deps/libfig20-0fe0c4b522bf3822.rmeta: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
