/root/repo/target/debug/deps/fig02-dbd9c44743f64736.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/libfig02-dbd9c44743f64736.rmeta: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
