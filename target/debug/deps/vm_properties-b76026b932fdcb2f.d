/root/repo/target/debug/deps/vm_properties-b76026b932fdcb2f.d: crates/vm-model/tests/vm_properties.rs

/root/repo/target/debug/deps/vm_properties-b76026b932fdcb2f: crates/vm-model/tests/vm_properties.rs

crates/vm-model/tests/vm_properties.rs:
