/root/repo/target/debug/deps/fig14-f457e4c18ca5db9d.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-f457e4c18ca5db9d: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
