/root/repo/target/debug/deps/dbg_audit-11a75ffe3550b581.d: crates/bench/src/bin/dbg_audit.rs Cargo.toml

/root/repo/target/debug/deps/libdbg_audit-11a75ffe3550b581.rmeta: crates/bench/src/bin/dbg_audit.rs Cargo.toml

crates/bench/src/bin/dbg_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
