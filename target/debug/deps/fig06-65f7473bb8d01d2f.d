/root/repo/target/debug/deps/fig06-65f7473bb8d01d2f.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/libfig06-65f7473bb8d01d2f.rmeta: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
