/root/repo/target/debug/deps/fig19-06d46fa67e8751d1.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/fig19-06d46fa67e8751d1: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
