/root/repo/target/debug/deps/workspace_clean-ca1f5d5f5e749d15.d: crates/simlint/tests/workspace_clean.rs

/root/repo/target/debug/deps/workspace_clean-ca1f5d5f5e749d15: crates/simlint/tests/workspace_clean.rs

crates/simlint/tests/workspace_clean.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/simlint
