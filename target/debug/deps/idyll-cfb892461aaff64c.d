/root/repo/target/debug/deps/idyll-cfb892461aaff64c.d: src/lib.rs

/root/repo/target/debug/deps/libidyll-cfb892461aaff64c.rmeta: src/lib.rs

src/lib.rs:
