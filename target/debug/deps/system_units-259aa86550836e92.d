/root/repo/target/debug/deps/system_units-259aa86550836e92.d: crates/mgpu-system/tests/system_units.rs

/root/repo/target/debug/deps/libsystem_units-259aa86550836e92.rmeta: crates/mgpu-system/tests/system_units.rs

crates/mgpu-system/tests/system_units.rs:
