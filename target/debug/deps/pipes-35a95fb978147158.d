/root/repo/target/debug/deps/pipes-35a95fb978147158.d: crates/bench/src/bin/pipes.rs

/root/repo/target/debug/deps/pipes-35a95fb978147158: crates/bench/src/bin/pipes.rs

crates/bench/src/bin/pipes.rs:
