/root/repo/target/debug/deps/determinism-9e637c6b0fd44338.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-9e637c6b0fd44338: tests/determinism.rs

tests/determinism.rs:
