/root/repo/target/debug/deps/mgpu_sim-cce323903b055491.d: crates/mgpu-system/src/bin/mgpu-sim.rs Cargo.toml

/root/repo/target/debug/deps/libmgpu_sim-cce323903b055491.rmeta: crates/mgpu-system/src/bin/mgpu-sim.rs Cargo.toml

crates/mgpu-system/src/bin/mgpu-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
