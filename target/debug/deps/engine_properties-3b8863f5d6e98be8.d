/root/repo/target/debug/deps/engine_properties-3b8863f5d6e98be8.d: crates/sim-engine/tests/engine_properties.rs

/root/repo/target/debug/deps/engine_properties-3b8863f5d6e98be8: crates/sim-engine/tests/engine_properties.rs

crates/sim-engine/tests/engine_properties.rs:
