/root/repo/target/debug/deps/fig24-dd5535de79a49fb8.d: crates/bench/src/bin/fig24.rs

/root/repo/target/debug/deps/fig24-dd5535de79a49fb8: crates/bench/src/bin/fig24.rs

crates/bench/src/bin/fig24.rs:
