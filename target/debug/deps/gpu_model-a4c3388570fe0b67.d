/root/repo/target/debug/deps/gpu_model-a4c3388570fe0b67.d: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs

/root/repo/target/debug/deps/gpu_model-a4c3388570fe0b67: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs

crates/gpu-model/src/lib.rs:
crates/gpu-model/src/cu.rs:
crates/gpu-model/src/gmmu.rs:
crates/gpu-model/src/gpu.rs:
crates/gpu-model/src/scheduler.rs:
