/root/repo/target/debug/deps/fig11-6a9c626975c1b512.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-6a9c626975c1b512: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
