/root/repo/target/debug/deps/idyll_bench-49b0fca8b4489545.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libidyll_bench-49b0fca8b4489545.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
