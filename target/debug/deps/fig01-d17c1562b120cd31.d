/root/repo/target/debug/deps/fig01-d17c1562b120cd31.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-d17c1562b120cd31: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
