/root/repo/target/debug/deps/mem_model-e3c50843e8266b26.d: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs

/root/repo/target/debug/deps/libmem_model-e3c50843e8266b26.rmeta: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs

crates/mem-model/src/lib.rs:
crates/mem-model/src/assoc.rs:
crates/mem-model/src/cache.rs:
crates/mem-model/src/dram.rs:
crates/mem-model/src/gpuset.rs:
crates/mem-model/src/interconnect.rs:
crates/mem-model/src/mshr.rs:
