/root/repo/target/debug/deps/fig16-bf02056bb4a2f1c6.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-bf02056bb4a2f1c6: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
