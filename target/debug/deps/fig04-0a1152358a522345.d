/root/repo/target/debug/deps/fig04-0a1152358a522345.d: crates/bench/src/bin/fig04.rs Cargo.toml

/root/repo/target/debug/deps/libfig04-0a1152358a522345.rmeta: crates/bench/src/bin/fig04.rs Cargo.toml

crates/bench/src/bin/fig04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
