/root/repo/target/debug/deps/idyll_core-acd85f573978f0a1.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

/root/repo/target/debug/deps/idyll_core-acd85f573978f0a1: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/directory.rs:
crates/core/src/irmb.rs:
crates/core/src/transfw.rs:
crates/core/src/vm_table.rs:
