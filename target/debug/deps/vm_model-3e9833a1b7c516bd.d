/root/repo/target/debug/deps/vm_model-3e9833a1b7c516bd.d: crates/vm-model/src/lib.rs crates/vm-model/src/addr.rs crates/vm-model/src/memmap.rs crates/vm-model/src/page_table.rs crates/vm-model/src/pte.rs crates/vm-model/src/pwc.rs crates/vm-model/src/tlb.rs crates/vm-model/src/walker.rs

/root/repo/target/debug/deps/libvm_model-3e9833a1b7c516bd.rmeta: crates/vm-model/src/lib.rs crates/vm-model/src/addr.rs crates/vm-model/src/memmap.rs crates/vm-model/src/page_table.rs crates/vm-model/src/pte.rs crates/vm-model/src/pwc.rs crates/vm-model/src/tlb.rs crates/vm-model/src/walker.rs

crates/vm-model/src/lib.rs:
crates/vm-model/src/addr.rs:
crates/vm-model/src/memmap.rs:
crates/vm-model/src/page_table.rs:
crates/vm-model/src/pte.rs:
crates/vm-model/src/pwc.rs:
crates/vm-model/src/tlb.rs:
crates/vm-model/src/walker.rs:
