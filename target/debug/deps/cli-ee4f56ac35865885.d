/root/repo/target/debug/deps/cli-ee4f56ac35865885.d: crates/simlint/tests/cli.rs

/root/repo/target/debug/deps/cli-ee4f56ac35865885: crates/simlint/tests/cli.rs

crates/simlint/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_simlint=/root/repo/target/debug/simlint
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/simlint
