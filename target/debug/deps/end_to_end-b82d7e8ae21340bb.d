/root/repo/target/debug/deps/end_to_end-b82d7e8ae21340bb.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-b82d7e8ae21340bb: tests/end_to_end.rs

tests/end_to_end.rs:
