/root/repo/target/debug/deps/simlint-1bf07aef1899b518.d: crates/simlint/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimlint-1bf07aef1899b518.rmeta: crates/simlint/src/lib.rs Cargo.toml

crates/simlint/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
