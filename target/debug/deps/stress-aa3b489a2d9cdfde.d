/root/repo/target/debug/deps/stress-aa3b489a2d9cdfde.d: tests/stress.rs

/root/repo/target/debug/deps/libstress-aa3b489a2d9cdfde.rmeta: tests/stress.rs

tests/stress.rs:
