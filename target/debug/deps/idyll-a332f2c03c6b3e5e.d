/root/repo/target/debug/deps/idyll-a332f2c03c6b3e5e.d: src/lib.rs

/root/repo/target/debug/deps/idyll-a332f2c03c6b3e5e: src/lib.rs

src/lib.rs:
