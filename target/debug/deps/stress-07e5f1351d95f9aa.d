/root/repo/target/debug/deps/stress-07e5f1351d95f9aa.d: tests/stress.rs

/root/repo/target/debug/deps/stress-07e5f1351d95f9aa: tests/stress.rs

tests/stress.rs:
