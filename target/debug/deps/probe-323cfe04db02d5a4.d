/root/repo/target/debug/deps/probe-323cfe04db02d5a4.d: crates/bench/src/bin/probe.rs Cargo.toml

/root/repo/target/debug/deps/libprobe-323cfe04db02d5a4.rmeta: crates/bench/src/bin/probe.rs Cargo.toml

crates/bench/src/bin/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
