/root/repo/target/debug/deps/table3-55844a5498d24898.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-55844a5498d24898: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
