/root/repo/target/debug/deps/fig20-a835a88a18daeb07.d: crates/bench/src/bin/fig20.rs

/root/repo/target/debug/deps/fig20-a835a88a18daeb07: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
