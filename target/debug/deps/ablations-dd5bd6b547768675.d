/root/repo/target/debug/deps/ablations-dd5bd6b547768675.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-dd5bd6b547768675.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
