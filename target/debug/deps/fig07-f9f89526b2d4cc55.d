/root/repo/target/debug/deps/fig07-f9f89526b2d4cc55.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/libfig07-f9f89526b2d4cc55.rmeta: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
