/root/repo/target/debug/deps/vm_model-b4e698add78a0499.d: crates/vm-model/src/lib.rs crates/vm-model/src/addr.rs crates/vm-model/src/memmap.rs crates/vm-model/src/page_table.rs crates/vm-model/src/pte.rs crates/vm-model/src/pwc.rs crates/vm-model/src/tlb.rs crates/vm-model/src/walker.rs Cargo.toml

/root/repo/target/debug/deps/libvm_model-b4e698add78a0499.rmeta: crates/vm-model/src/lib.rs crates/vm-model/src/addr.rs crates/vm-model/src/memmap.rs crates/vm-model/src/page_table.rs crates/vm-model/src/pte.rs crates/vm-model/src/pwc.rs crates/vm-model/src/tlb.rs crates/vm-model/src/walker.rs Cargo.toml

crates/vm-model/src/lib.rs:
crates/vm-model/src/addr.rs:
crates/vm-model/src/memmap.rs:
crates/vm-model/src/page_table.rs:
crates/vm-model/src/pte.rs:
crates/vm-model/src/pwc.rs:
crates/vm-model/src/tlb.rs:
crates/vm-model/src/walker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
