/root/repo/target/debug/deps/workloads-922fa278c74c276c.d: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libworkloads-922fa278c74c276c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dnn.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/serialize.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/stats.rs:
crates/workloads/src/trace.rs:
