/root/repo/target/debug/deps/idyll_core-0bff1deb8c3aa968.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

/root/repo/target/debug/deps/libidyll_core-0bff1deb8c3aa968.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/directory.rs:
crates/core/src/irmb.rs:
crates/core/src/transfw.rs:
crates/core/src/vm_table.rs:
