/root/repo/target/debug/deps/fig07-1246d507687fc93d.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-1246d507687fc93d: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
