/root/repo/target/debug/deps/fig13-8379a7ad9c68c192.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-8379a7ad9c68c192: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
