/root/repo/target/debug/deps/idyll_bench-897610c0c33d82e6.d: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs Cargo.toml

/root/repo/target/debug/deps/libidyll_bench-897610c0c33d82e6.rmeta: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/grid_metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
