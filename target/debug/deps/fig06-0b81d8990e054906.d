/root/repo/target/debug/deps/fig06-0b81d8990e054906.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/fig06-0b81d8990e054906: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
