/root/repo/target/debug/deps/properties-00840ff661fd19ce.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-00840ff661fd19ce.rmeta: tests/properties.rs

tests/properties.rs:
