/root/repo/target/debug/deps/mem_properties-bd61a9839e31e912.d: crates/mem-model/tests/mem_properties.rs

/root/repo/target/debug/deps/mem_properties-bd61a9839e31e912: crates/mem-model/tests/mem_properties.rs

crates/mem-model/tests/mem_properties.rs:
