/root/repo/target/debug/deps/scaling-e192b61730d15331.d: tests/scaling.rs

/root/repo/target/debug/deps/libscaling-e192b61730d15331.rmeta: tests/scaling.rs

tests/scaling.rs:
