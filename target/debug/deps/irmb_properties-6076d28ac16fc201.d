/root/repo/target/debug/deps/irmb_properties-6076d28ac16fc201.d: crates/core/tests/irmb_properties.rs

/root/repo/target/debug/deps/libirmb_properties-6076d28ac16fc201.rmeta: crates/core/tests/irmb_properties.rs

crates/core/tests/irmb_properties.rs:
