/root/repo/target/debug/deps/fig23-dffa1e5b3e4bf3e1.d: crates/bench/src/bin/fig23.rs

/root/repo/target/debug/deps/fig23-dffa1e5b3e4bf3e1: crates/bench/src/bin/fig23.rs

crates/bench/src/bin/fig23.rs:
