/root/repo/target/debug/deps/determinism-ba7ee32ebb1675ae.d: tests/determinism.rs

/root/repo/target/debug/deps/libdeterminism-ba7ee32ebb1675ae.rmeta: tests/determinism.rs

tests/determinism.rs:
