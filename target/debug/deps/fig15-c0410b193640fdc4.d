/root/repo/target/debug/deps/fig15-c0410b193640fdc4.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-c0410b193640fdc4: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
