/root/repo/target/debug/deps/fig04-70a4403f398948d2.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/libfig04-70a4403f398948d2.rmeta: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
