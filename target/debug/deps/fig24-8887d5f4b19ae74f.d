/root/repo/target/debug/deps/fig24-8887d5f4b19ae74f.d: crates/bench/src/bin/fig24.rs

/root/repo/target/debug/deps/fig24-8887d5f4b19ae74f: crates/bench/src/bin/fig24.rs

crates/bench/src/bin/fig24.rs:
