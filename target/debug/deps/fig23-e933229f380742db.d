/root/repo/target/debug/deps/fig23-e933229f380742db.d: crates/bench/src/bin/fig23.rs

/root/repo/target/debug/deps/libfig23-e933229f380742db.rmeta: crates/bench/src/bin/fig23.rs

crates/bench/src/bin/fig23.rs:
