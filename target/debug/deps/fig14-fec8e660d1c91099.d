/root/repo/target/debug/deps/fig14-fec8e660d1c91099.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-fec8e660d1c91099: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
