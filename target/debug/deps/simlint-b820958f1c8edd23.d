/root/repo/target/debug/deps/simlint-b820958f1c8edd23.d: crates/simlint/src/main.rs

/root/repo/target/debug/deps/simlint-b820958f1c8edd23: crates/simlint/src/main.rs

crates/simlint/src/main.rs:
