/root/repo/target/debug/deps/fig05-de6487dc00743513.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/fig05-de6487dc00743513: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
