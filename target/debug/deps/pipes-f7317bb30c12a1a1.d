/root/repo/target/debug/deps/pipes-f7317bb30c12a1a1.d: crates/bench/src/bin/pipes.rs

/root/repo/target/debug/deps/libpipes-f7317bb30c12a1a1.rmeta: crates/bench/src/bin/pipes.rs

crates/bench/src/bin/pipes.rs:
