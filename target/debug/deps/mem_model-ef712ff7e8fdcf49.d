/root/repo/target/debug/deps/mem_model-ef712ff7e8fdcf49.d: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs

/root/repo/target/debug/deps/libmem_model-ef712ff7e8fdcf49.rmeta: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs

crates/mem-model/src/lib.rs:
crates/mem-model/src/assoc.rs:
crates/mem-model/src/cache.rs:
crates/mem-model/src/dram.rs:
crates/mem-model/src/gpuset.rs:
crates/mem-model/src/interconnect.rs:
crates/mem-model/src/mshr.rs:
