/root/repo/target/debug/deps/fig12-c27d4fd5f856250b.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-c27d4fd5f856250b: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
