/root/repo/target/debug/deps/ablations-05ad4142a3ffe803.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-05ad4142a3ffe803: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
