/root/repo/target/debug/deps/fig19-c9873848b1a1cb46.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/libfig19-c9873848b1a1cb46.rmeta: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
