/root/repo/target/debug/deps/dbg_audit-2967f76660254d47.d: crates/bench/src/bin/dbg_audit.rs

/root/repo/target/debug/deps/dbg_audit-2967f76660254d47: crates/bench/src/bin/dbg_audit.rs

crates/bench/src/bin/dbg_audit.rs:
