/root/repo/target/debug/deps/fig14-b5e41b8ae79132bb.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/libfig14-b5e41b8ae79132bb.rmeta: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
