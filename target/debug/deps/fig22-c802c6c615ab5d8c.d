/root/repo/target/debug/deps/fig22-c802c6c615ab5d8c.d: crates/bench/src/bin/fig22.rs

/root/repo/target/debug/deps/libfig22-c802c6c615ab5d8c.rmeta: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
