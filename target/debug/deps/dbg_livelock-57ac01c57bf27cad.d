/root/repo/target/debug/deps/dbg_livelock-57ac01c57bf27cad.d: crates/bench/src/bin/dbg_livelock.rs

/root/repo/target/debug/deps/libdbg_livelock-57ac01c57bf27cad.rmeta: crates/bench/src/bin/dbg_livelock.rs

crates/bench/src/bin/dbg_livelock.rs:
