/root/repo/target/debug/deps/fig16-d70da0bf20a7a9d7.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-d70da0bf20a7a9d7: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
