/root/repo/target/debug/deps/fig15-a13f5a645353258a.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-a13f5a645353258a: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
