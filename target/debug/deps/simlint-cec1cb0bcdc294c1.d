/root/repo/target/debug/deps/simlint-cec1cb0bcdc294c1.d: crates/simlint/src/main.rs

/root/repo/target/debug/deps/simlint-cec1cb0bcdc294c1: crates/simlint/src/main.rs

crates/simlint/src/main.rs:
