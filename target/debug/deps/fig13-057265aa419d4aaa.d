/root/repo/target/debug/deps/fig13-057265aa419d4aaa.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/libfig13-057265aa419d4aaa.rmeta: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
