/root/repo/target/debug/deps/idyll-ea45922eb3854e9f.d: src/lib.rs

/root/repo/target/debug/deps/libidyll-ea45922eb3854e9f.rmeta: src/lib.rs

src/lib.rs:
