/root/repo/target/debug/deps/scaling-1039e04d724fef8c.d: tests/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-1039e04d724fef8c.rmeta: tests/scaling.rs Cargo.toml

tests/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
