/root/repo/target/debug/deps/pipes-44aaaa37b6ce9e3f.d: crates/bench/src/bin/pipes.rs Cargo.toml

/root/repo/target/debug/deps/libpipes-44aaaa37b6ce9e3f.rmeta: crates/bench/src/bin/pipes.rs Cargo.toml

crates/bench/src/bin/pipes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
