/root/repo/target/debug/deps/fig12-f46ad17e84f51eb0.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-f46ad17e84f51eb0: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
