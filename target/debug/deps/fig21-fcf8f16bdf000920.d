/root/repo/target/debug/deps/fig21-fcf8f16bdf000920.d: crates/bench/src/bin/fig21.rs

/root/repo/target/debug/deps/fig21-fcf8f16bdf000920: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
