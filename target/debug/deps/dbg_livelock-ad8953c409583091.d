/root/repo/target/debug/deps/dbg_livelock-ad8953c409583091.d: crates/bench/src/bin/dbg_livelock.rs

/root/repo/target/debug/deps/dbg_livelock-ad8953c409583091: crates/bench/src/bin/dbg_livelock.rs

crates/bench/src/bin/dbg_livelock.rs:
