/root/repo/target/debug/deps/table2-90604a90c8474e1f.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-90604a90c8474e1f: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
