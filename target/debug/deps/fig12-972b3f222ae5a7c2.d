/root/repo/target/debug/deps/fig12-972b3f222ae5a7c2.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/libfig12-972b3f222ae5a7c2.rmeta: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
