/root/repo/target/debug/deps/idyll_core-8cd13e837ffee7dd.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

/root/repo/target/debug/deps/libidyll_core-8cd13e837ffee7dd.rlib: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

/root/repo/target/debug/deps/libidyll_core-8cd13e837ffee7dd.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/directory.rs:
crates/core/src/irmb.rs:
crates/core/src/transfw.rs:
crates/core/src/vm_table.rs:
