/root/repo/target/debug/deps/all_figures-f66c1fca89ee0cb2.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/liball_figures-f66c1fca89ee0cb2.rmeta: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
