/root/repo/target/debug/deps/fig18-b4a127bb9241b9d1.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-b4a127bb9241b9d1: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
