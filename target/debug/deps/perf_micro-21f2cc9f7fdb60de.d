/root/repo/target/debug/deps/perf_micro-21f2cc9f7fdb60de.d: crates/bench/src/bin/perf_micro.rs

/root/repo/target/debug/deps/libperf_micro-21f2cc9f7fdb60de.rmeta: crates/bench/src/bin/perf_micro.rs

crates/bench/src/bin/perf_micro.rs:
