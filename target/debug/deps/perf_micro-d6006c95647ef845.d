/root/repo/target/debug/deps/perf_micro-d6006c95647ef845.d: crates/bench/src/bin/perf_micro.rs

/root/repo/target/debug/deps/perf_micro-d6006c95647ef845: crates/bench/src/bin/perf_micro.rs

crates/bench/src/bin/perf_micro.rs:
