/root/repo/target/debug/deps/fig16-134ec2aaa4340b8f.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/libfig16-134ec2aaa4340b8f.rmeta: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
