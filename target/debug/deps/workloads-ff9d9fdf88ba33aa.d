/root/repo/target/debug/deps/workloads-ff9d9fdf88ba33aa.d: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libworkloads-ff9d9fdf88ba33aa.rlib: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libworkloads-ff9d9fdf88ba33aa.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dnn.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/serialize.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/stats.rs:
crates/workloads/src/trace.rs:
