/root/repo/target/debug/deps/fig13-136e16560e21d7a8.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-136e16560e21d7a8: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
