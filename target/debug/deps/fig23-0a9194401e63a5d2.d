/root/repo/target/debug/deps/fig23-0a9194401e63a5d2.d: crates/bench/src/bin/fig23.rs

/root/repo/target/debug/deps/fig23-0a9194401e63a5d2: crates/bench/src/bin/fig23.rs

crates/bench/src/bin/fig23.rs:
