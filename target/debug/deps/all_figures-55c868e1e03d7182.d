/root/repo/target/debug/deps/all_figures-55c868e1e03d7182.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-55c868e1e03d7182: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
