/root/repo/target/debug/deps/fig02-a5c4cd43aec90dcc.d: crates/bench/src/bin/fig02.rs Cargo.toml

/root/repo/target/debug/deps/libfig02-a5c4cd43aec90dcc.rmeta: crates/bench/src/bin/fig02.rs Cargo.toml

crates/bench/src/bin/fig02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
