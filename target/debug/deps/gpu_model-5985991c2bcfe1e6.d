/root/repo/target/debug/deps/gpu_model-5985991c2bcfe1e6.d: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs

/root/repo/target/debug/deps/libgpu_model-5985991c2bcfe1e6.rmeta: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs

crates/gpu-model/src/lib.rs:
crates/gpu-model/src/cu.rs:
crates/gpu-model/src/gmmu.rs:
crates/gpu-model/src/gpu.rs:
crates/gpu-model/src/scheduler.rs:
