/root/repo/target/debug/deps/cli-19ae05e26e295c7c.d: crates/simlint/tests/cli.rs

/root/repo/target/debug/deps/libcli-19ae05e26e295c7c.rmeta: crates/simlint/tests/cli.rs

crates/simlint/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_simlint=placeholder:simlint
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/simlint
