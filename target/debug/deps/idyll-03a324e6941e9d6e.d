/root/repo/target/debug/deps/idyll-03a324e6941e9d6e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libidyll-03a324e6941e9d6e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
