/root/repo/target/debug/deps/directory_properties-e3f520b55344ab04.d: crates/core/tests/directory_properties.rs

/root/repo/target/debug/deps/directory_properties-e3f520b55344ab04: crates/core/tests/directory_properties.rs

crates/core/tests/directory_properties.rs:
