/root/repo/target/debug/deps/fig23-77ac8b46af4cbeb4.d: crates/bench/src/bin/fig23.rs Cargo.toml

/root/repo/target/debug/deps/libfig23-77ac8b46af4cbeb4.rmeta: crates/bench/src/bin/fig23.rs Cargo.toml

crates/bench/src/bin/fig23.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
