/root/repo/target/debug/deps/dbg_livelock-a7c4c9474f4e171e.d: crates/bench/src/bin/dbg_livelock.rs

/root/repo/target/debug/deps/dbg_livelock-a7c4c9474f4e171e: crates/bench/src/bin/dbg_livelock.rs

crates/bench/src/bin/dbg_livelock.rs:
