/root/repo/target/debug/deps/simlint-fb067b30e05f1a42.d: crates/simlint/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimlint-fb067b30e05f1a42.rmeta: crates/simlint/src/lib.rs Cargo.toml

crates/simlint/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
