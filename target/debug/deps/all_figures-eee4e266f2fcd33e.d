/root/repo/target/debug/deps/all_figures-eee4e266f2fcd33e.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/liball_figures-eee4e266f2fcd33e.rmeta: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
