/root/repo/target/debug/deps/fig11-aaa942a193fd8e43.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-aaa942a193fd8e43.rmeta: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
