/root/repo/target/debug/deps/idyll_bench-a431dfe1e83670ca.d: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

/root/repo/target/debug/deps/libidyll_bench-a431dfe1e83670ca.rmeta: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

crates/bench/src/lib.rs:
crates/bench/src/grid_metrics.rs:
