/root/repo/target/debug/deps/mem_properties-a8f63d6b2b215e92.d: crates/mem-model/tests/mem_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmem_properties-a8f63d6b2b215e92.rmeta: crates/mem-model/tests/mem_properties.rs Cargo.toml

crates/mem-model/tests/mem_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
