/root/repo/target/debug/deps/extensions-068d57d7779b1154.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-068d57d7779b1154: tests/extensions.rs

tests/extensions.rs:
