/root/repo/target/debug/deps/vm_model-903e284bed25732e.d: crates/vm-model/src/lib.rs crates/vm-model/src/addr.rs crates/vm-model/src/memmap.rs crates/vm-model/src/page_table.rs crates/vm-model/src/pte.rs crates/vm-model/src/pwc.rs crates/vm-model/src/tlb.rs crates/vm-model/src/walker.rs

/root/repo/target/debug/deps/vm_model-903e284bed25732e: crates/vm-model/src/lib.rs crates/vm-model/src/addr.rs crates/vm-model/src/memmap.rs crates/vm-model/src/page_table.rs crates/vm-model/src/pte.rs crates/vm-model/src/pwc.rs crates/vm-model/src/tlb.rs crates/vm-model/src/walker.rs

crates/vm-model/src/lib.rs:
crates/vm-model/src/addr.rs:
crates/vm-model/src/memmap.rs:
crates/vm-model/src/page_table.rs:
crates/vm-model/src/pte.rs:
crates/vm-model/src/pwc.rs:
crates/vm-model/src/tlb.rs:
crates/vm-model/src/walker.rs:
