/root/repo/target/debug/deps/workspace_clean-21c33ff75add4a2e.d: crates/simlint/tests/workspace_clean.rs Cargo.toml

/root/repo/target/debug/deps/libworkspace_clean-21c33ff75add4a2e.rmeta: crates/simlint/tests/workspace_clean.rs Cargo.toml

crates/simlint/tests/workspace_clean.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/simlint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
