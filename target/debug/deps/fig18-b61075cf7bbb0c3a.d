/root/repo/target/debug/deps/fig18-b61075cf7bbb0c3a.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-b61075cf7bbb0c3a: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
