/root/repo/target/debug/deps/fig07-52c895c5639fd275.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/libfig07-52c895c5639fd275.rmeta: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
