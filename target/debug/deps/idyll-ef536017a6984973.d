/root/repo/target/debug/deps/idyll-ef536017a6984973.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libidyll-ef536017a6984973.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
