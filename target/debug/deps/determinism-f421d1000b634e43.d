/root/repo/target/debug/deps/determinism-f421d1000b634e43.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-f421d1000b634e43.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
