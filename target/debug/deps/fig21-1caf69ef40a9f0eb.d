/root/repo/target/debug/deps/fig21-1caf69ef40a9f0eb.d: crates/bench/src/bin/fig21.rs

/root/repo/target/debug/deps/fig21-1caf69ef40a9f0eb: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
