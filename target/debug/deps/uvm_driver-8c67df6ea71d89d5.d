/root/repo/target/debug/deps/uvm_driver-8c67df6ea71d89d5.d: crates/uvm-driver/src/lib.rs crates/uvm-driver/src/fault.rs crates/uvm-driver/src/host.rs crates/uvm-driver/src/migration.rs crates/uvm-driver/src/policy.rs crates/uvm-driver/src/prefetch.rs crates/uvm-driver/src/replication.rs

/root/repo/target/debug/deps/uvm_driver-8c67df6ea71d89d5: crates/uvm-driver/src/lib.rs crates/uvm-driver/src/fault.rs crates/uvm-driver/src/host.rs crates/uvm-driver/src/migration.rs crates/uvm-driver/src/policy.rs crates/uvm-driver/src/prefetch.rs crates/uvm-driver/src/replication.rs

crates/uvm-driver/src/lib.rs:
crates/uvm-driver/src/fault.rs:
crates/uvm-driver/src/host.rs:
crates/uvm-driver/src/migration.rs:
crates/uvm-driver/src/policy.rs:
crates/uvm-driver/src/prefetch.rs:
crates/uvm-driver/src/replication.rs:
