/root/repo/target/debug/deps/gpu_model-f5d1e06209906776.d: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_model-f5d1e06209906776.rmeta: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs Cargo.toml

crates/gpu-model/src/lib.rs:
crates/gpu-model/src/cu.rs:
crates/gpu-model/src/gmmu.rs:
crates/gpu-model/src/gpu.rs:
crates/gpu-model/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
