/root/repo/target/debug/deps/mechanisms-8648c93d69c0c83e.d: tests/mechanisms.rs Cargo.toml

/root/repo/target/debug/deps/libmechanisms-8648c93d69c0c83e.rmeta: tests/mechanisms.rs Cargo.toml

tests/mechanisms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
