/root/repo/target/debug/deps/fig19-346a04ee2b519a07.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/libfig19-346a04ee2b519a07.rmeta: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
