/root/repo/target/debug/deps/fig04-1193286e21e2ec32.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/fig04-1193286e21e2ec32: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
