/root/repo/target/debug/deps/simlint-6f26e568817a79d7.d: crates/simlint/src/main.rs

/root/repo/target/debug/deps/libsimlint-6f26e568817a79d7.rmeta: crates/simlint/src/main.rs

crates/simlint/src/main.rs:
