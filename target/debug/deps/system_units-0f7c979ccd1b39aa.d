/root/repo/target/debug/deps/system_units-0f7c979ccd1b39aa.d: crates/mgpu-system/tests/system_units.rs

/root/repo/target/debug/deps/system_units-0f7c979ccd1b39aa: crates/mgpu-system/tests/system_units.rs

crates/mgpu-system/tests/system_units.rs:
