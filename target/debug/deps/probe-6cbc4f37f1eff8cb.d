/root/repo/target/debug/deps/probe-6cbc4f37f1eff8cb.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-6cbc4f37f1eff8cb: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
