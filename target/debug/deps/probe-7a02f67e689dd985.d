/root/repo/target/debug/deps/probe-7a02f67e689dd985.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/libprobe-7a02f67e689dd985.rmeta: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
