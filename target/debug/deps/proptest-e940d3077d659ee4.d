/root/repo/target/debug/deps/proptest-e940d3077d659ee4.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e940d3077d659ee4.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
