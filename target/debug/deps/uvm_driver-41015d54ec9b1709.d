/root/repo/target/debug/deps/uvm_driver-41015d54ec9b1709.d: crates/uvm-driver/src/lib.rs crates/uvm-driver/src/fault.rs crates/uvm-driver/src/host.rs crates/uvm-driver/src/migration.rs crates/uvm-driver/src/policy.rs crates/uvm-driver/src/prefetch.rs crates/uvm-driver/src/replication.rs Cargo.toml

/root/repo/target/debug/deps/libuvm_driver-41015d54ec9b1709.rmeta: crates/uvm-driver/src/lib.rs crates/uvm-driver/src/fault.rs crates/uvm-driver/src/host.rs crates/uvm-driver/src/migration.rs crates/uvm-driver/src/policy.rs crates/uvm-driver/src/prefetch.rs crates/uvm-driver/src/replication.rs Cargo.toml

crates/uvm-driver/src/lib.rs:
crates/uvm-driver/src/fault.rs:
crates/uvm-driver/src/host.rs:
crates/uvm-driver/src/migration.rs:
crates/uvm-driver/src/policy.rs:
crates/uvm-driver/src/prefetch.rs:
crates/uvm-driver/src/replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
