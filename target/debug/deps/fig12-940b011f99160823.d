/root/repo/target/debug/deps/fig12-940b011f99160823.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/libfig12-940b011f99160823.rmeta: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
