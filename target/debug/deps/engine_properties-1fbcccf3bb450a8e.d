/root/repo/target/debug/deps/engine_properties-1fbcccf3bb450a8e.d: crates/sim-engine/tests/engine_properties.rs Cargo.toml

/root/repo/target/debug/deps/libengine_properties-1fbcccf3bb450a8e.rmeta: crates/sim-engine/tests/engine_properties.rs Cargo.toml

crates/sim-engine/tests/engine_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
