/root/repo/target/debug/deps/fig17-f77000156d64a74f.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/libfig17-f77000156d64a74f.rmeta: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
