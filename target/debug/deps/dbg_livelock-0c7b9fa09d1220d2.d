/root/repo/target/debug/deps/dbg_livelock-0c7b9fa09d1220d2.d: crates/bench/src/bin/dbg_livelock.rs Cargo.toml

/root/repo/target/debug/deps/libdbg_livelock-0c7b9fa09d1220d2.rmeta: crates/bench/src/bin/dbg_livelock.rs Cargo.toml

crates/bench/src/bin/dbg_livelock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
