/root/repo/target/debug/deps/simlint-2d5a44be8e6203c5.d: crates/simlint/src/lib.rs

/root/repo/target/debug/deps/simlint-2d5a44be8e6203c5: crates/simlint/src/lib.rs

crates/simlint/src/lib.rs:
