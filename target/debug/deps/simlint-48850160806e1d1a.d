/root/repo/target/debug/deps/simlint-48850160806e1d1a.d: crates/simlint/src/lib.rs

/root/repo/target/debug/deps/libsimlint-48850160806e1d1a.rmeta: crates/simlint/src/lib.rs

crates/simlint/src/lib.rs:
