/root/repo/target/debug/deps/idyll_bench-021959ad35fd0b11.d: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

/root/repo/target/debug/deps/libidyll_bench-021959ad35fd0b11.rlib: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

/root/repo/target/debug/deps/libidyll_bench-021959ad35fd0b11.rmeta: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

crates/bench/src/lib.rs:
crates/bench/src/grid_metrics.rs:
