/root/repo/target/debug/deps/fig11-1851b0f8a3ce7b62.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-1851b0f8a3ce7b62: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
