/root/repo/target/debug/deps/fig05-b4375318cf81040b.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/fig05-b4375318cf81040b: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
