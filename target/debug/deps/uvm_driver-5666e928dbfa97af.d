/root/repo/target/debug/deps/uvm_driver-5666e928dbfa97af.d: crates/uvm-driver/src/lib.rs crates/uvm-driver/src/fault.rs crates/uvm-driver/src/host.rs crates/uvm-driver/src/migration.rs crates/uvm-driver/src/policy.rs crates/uvm-driver/src/prefetch.rs crates/uvm-driver/src/replication.rs

/root/repo/target/debug/deps/libuvm_driver-5666e928dbfa97af.rmeta: crates/uvm-driver/src/lib.rs crates/uvm-driver/src/fault.rs crates/uvm-driver/src/host.rs crates/uvm-driver/src/migration.rs crates/uvm-driver/src/policy.rs crates/uvm-driver/src/prefetch.rs crates/uvm-driver/src/replication.rs

crates/uvm-driver/src/lib.rs:
crates/uvm-driver/src/fault.rs:
crates/uvm-driver/src/host.rs:
crates/uvm-driver/src/migration.rs:
crates/uvm-driver/src/policy.rs:
crates/uvm-driver/src/prefetch.rs:
crates/uvm-driver/src/replication.rs:
