/root/repo/target/debug/deps/simlint-6337e1fba71f98c4.d: crates/simlint/src/lib.rs

/root/repo/target/debug/deps/libsimlint-6337e1fba71f98c4.rmeta: crates/simlint/src/lib.rs

crates/simlint/src/lib.rs:
