/root/repo/target/debug/deps/fig14-0a0510e3e8cfecd5.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/libfig14-0a0510e3e8cfecd5.rmeta: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
