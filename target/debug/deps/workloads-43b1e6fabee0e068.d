/root/repo/target/debug/deps/workloads-43b1e6fabee0e068.d: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libworkloads-43b1e6fabee0e068.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dnn.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/serialize.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/stats.rs:
crates/workloads/src/trace.rs:
