/root/repo/target/debug/deps/fig24-758623d44dbccf23.d: crates/bench/src/bin/fig24.rs

/root/repo/target/debug/deps/libfig24-758623d44dbccf23.rmeta: crates/bench/src/bin/fig24.rs

crates/bench/src/bin/fig24.rs:
