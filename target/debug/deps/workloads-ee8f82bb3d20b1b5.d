/root/repo/target/debug/deps/workloads-ee8f82bb3d20b1b5.d: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-ee8f82bb3d20b1b5.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/dnn.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/serialize.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/stats.rs:
crates/workloads/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
