/root/repo/target/debug/deps/fig04-34ec13598b81bb51.d: crates/bench/src/bin/fig04.rs Cargo.toml

/root/repo/target/debug/deps/libfig04-34ec13598b81bb51.rmeta: crates/bench/src/bin/fig04.rs Cargo.toml

crates/bench/src/bin/fig04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
