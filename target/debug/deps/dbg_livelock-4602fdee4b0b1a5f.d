/root/repo/target/debug/deps/dbg_livelock-4602fdee4b0b1a5f.d: crates/bench/src/bin/dbg_livelock.rs Cargo.toml

/root/repo/target/debug/deps/libdbg_livelock-4602fdee4b0b1a5f.rmeta: crates/bench/src/bin/dbg_livelock.rs Cargo.toml

crates/bench/src/bin/dbg_livelock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
