/root/repo/target/debug/deps/idyll_bench-81544026489d15f3.d: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

/root/repo/target/debug/deps/libidyll_bench-81544026489d15f3.rmeta: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

crates/bench/src/lib.rs:
crates/bench/src/grid_metrics.rs:
