/root/repo/target/debug/deps/fig02-d0988d8bfa83c776.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/libfig02-d0988d8bfa83c776.rmeta: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
