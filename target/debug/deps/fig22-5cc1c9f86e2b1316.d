/root/repo/target/debug/deps/fig22-5cc1c9f86e2b1316.d: crates/bench/src/bin/fig22.rs

/root/repo/target/debug/deps/libfig22-5cc1c9f86e2b1316.rmeta: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
