/root/repo/target/debug/deps/mgpu_sim-7ab71cb543621b19.d: crates/mgpu-system/src/bin/mgpu-sim.rs

/root/repo/target/debug/deps/mgpu_sim-7ab71cb543621b19: crates/mgpu-system/src/bin/mgpu-sim.rs

crates/mgpu-system/src/bin/mgpu-sim.rs:
