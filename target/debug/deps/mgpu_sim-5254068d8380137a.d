/root/repo/target/debug/deps/mgpu_sim-5254068d8380137a.d: crates/mgpu-system/src/bin/mgpu-sim.rs

/root/repo/target/debug/deps/libmgpu_sim-5254068d8380137a.rmeta: crates/mgpu-system/src/bin/mgpu-sim.rs

crates/mgpu-system/src/bin/mgpu-sim.rs:
