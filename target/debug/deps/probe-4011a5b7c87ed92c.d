/root/repo/target/debug/deps/probe-4011a5b7c87ed92c.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-4011a5b7c87ed92c: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
