/root/repo/target/debug/deps/table2-1239131c2efdbc63.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-1239131c2efdbc63.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
