/root/repo/target/debug/deps/extensions-55986963c5b19a79.d: tests/extensions.rs

/root/repo/target/debug/deps/libextensions-55986963c5b19a79.rmeta: tests/extensions.rs

tests/extensions.rs:
