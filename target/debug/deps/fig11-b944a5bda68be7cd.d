/root/repo/target/debug/deps/fig11-b944a5bda68be7cd.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-b944a5bda68be7cd.rmeta: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
