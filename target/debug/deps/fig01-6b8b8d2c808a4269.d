/root/repo/target/debug/deps/fig01-6b8b8d2c808a4269.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/libfig01-6b8b8d2c808a4269.rmeta: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
