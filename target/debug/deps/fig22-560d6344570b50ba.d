/root/repo/target/debug/deps/fig22-560d6344570b50ba.d: crates/bench/src/bin/fig22.rs Cargo.toml

/root/repo/target/debug/deps/libfig22-560d6344570b50ba.rmeta: crates/bench/src/bin/fig22.rs Cargo.toml

crates/bench/src/bin/fig22.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
