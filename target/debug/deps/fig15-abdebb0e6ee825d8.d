/root/repo/target/debug/deps/fig15-abdebb0e6ee825d8.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/libfig15-abdebb0e6ee825d8.rmeta: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
