/root/repo/target/debug/deps/scaling-113b67aa3b50b756.d: tests/scaling.rs

/root/repo/target/debug/deps/scaling-113b67aa3b50b756: tests/scaling.rs

tests/scaling.rs:
