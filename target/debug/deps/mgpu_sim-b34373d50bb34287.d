/root/repo/target/debug/deps/mgpu_sim-b34373d50bb34287.d: crates/mgpu-system/src/bin/mgpu-sim.rs

/root/repo/target/debug/deps/mgpu_sim-b34373d50bb34287: crates/mgpu-system/src/bin/mgpu-sim.rs

crates/mgpu-system/src/bin/mgpu-sim.rs:
