/root/repo/target/debug/deps/fig17-b1cb9e301dd1a466.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-b1cb9e301dd1a466: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
