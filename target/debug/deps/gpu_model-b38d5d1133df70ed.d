/root/repo/target/debug/deps/gpu_model-b38d5d1133df70ed.d: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_model-b38d5d1133df70ed.rmeta: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs Cargo.toml

crates/gpu-model/src/lib.rs:
crates/gpu-model/src/cu.rs:
crates/gpu-model/src/gmmu.rs:
crates/gpu-model/src/gpu.rs:
crates/gpu-model/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
