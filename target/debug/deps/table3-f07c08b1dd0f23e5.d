/root/repo/target/debug/deps/table3-f07c08b1dd0f23e5.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-f07c08b1dd0f23e5.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
