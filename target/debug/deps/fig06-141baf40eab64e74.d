/root/repo/target/debug/deps/fig06-141baf40eab64e74.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/fig06-141baf40eab64e74: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
