/root/repo/target/debug/deps/fig04-1f3d6b7f5005b0f4.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/fig04-1f3d6b7f5005b0f4: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
