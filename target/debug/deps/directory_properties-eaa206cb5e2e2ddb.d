/root/repo/target/debug/deps/directory_properties-eaa206cb5e2e2ddb.d: crates/core/tests/directory_properties.rs

/root/repo/target/debug/deps/libdirectory_properties-eaa206cb5e2e2ddb.rmeta: crates/core/tests/directory_properties.rs

crates/core/tests/directory_properties.rs:
