/root/repo/target/debug/deps/ablations-64b985269f5d9d1c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-64b985269f5d9d1c.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
