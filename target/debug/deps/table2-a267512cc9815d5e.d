/root/repo/target/debug/deps/table2-a267512cc9815d5e.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-a267512cc9815d5e.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
