/root/repo/target/debug/deps/fig05-ec2f0d780198993c.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/libfig05-ec2f0d780198993c.rmeta: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
