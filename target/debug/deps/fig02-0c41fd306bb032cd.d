/root/repo/target/debug/deps/fig02-0c41fd306bb032cd.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-0c41fd306bb032cd: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
