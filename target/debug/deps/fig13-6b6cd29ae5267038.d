/root/repo/target/debug/deps/fig13-6b6cd29ae5267038.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/libfig13-6b6cd29ae5267038.rmeta: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
