/root/repo/target/debug/examples/pagerank_multi_gpu-668d2d4127831e52.d: examples/pagerank_multi_gpu.rs Cargo.toml

/root/repo/target/debug/examples/libpagerank_multi_gpu-668d2d4127831e52.rmeta: examples/pagerank_multi_gpu.rs Cargo.toml

examples/pagerank_multi_gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
