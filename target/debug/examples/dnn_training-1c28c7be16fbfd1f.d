/root/repo/target/debug/examples/dnn_training-1c28c7be16fbfd1f.d: examples/dnn_training.rs

/root/repo/target/debug/examples/dnn_training-1c28c7be16fbfd1f: examples/dnn_training.rs

examples/dnn_training.rs:
