/root/repo/target/debug/examples/pagerank_multi_gpu-2fcaa47c203270fa.d: examples/pagerank_multi_gpu.rs

/root/repo/target/debug/examples/pagerank_multi_gpu-2fcaa47c203270fa: examples/pagerank_multi_gpu.rs

examples/pagerank_multi_gpu.rs:
