/root/repo/target/debug/examples/migration_policies-ab6e37c01f753297.d: examples/migration_policies.rs

/root/repo/target/debug/examples/libmigration_policies-ab6e37c01f753297.rmeta: examples/migration_policies.rs

examples/migration_policies.rs:
