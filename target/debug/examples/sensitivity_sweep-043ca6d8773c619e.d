/root/repo/target/debug/examples/sensitivity_sweep-043ca6d8773c619e.d: examples/sensitivity_sweep.rs

/root/repo/target/debug/examples/sensitivity_sweep-043ca6d8773c619e: examples/sensitivity_sweep.rs

examples/sensitivity_sweep.rs:
