/root/repo/target/debug/examples/dnn_training-4d55c39e21ebc3bc.d: examples/dnn_training.rs

/root/repo/target/debug/examples/libdnn_training-4d55c39e21ebc3bc.rmeta: examples/dnn_training.rs

examples/dnn_training.rs:
