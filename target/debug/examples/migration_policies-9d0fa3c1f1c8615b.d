/root/repo/target/debug/examples/migration_policies-9d0fa3c1f1c8615b.d: examples/migration_policies.rs

/root/repo/target/debug/examples/migration_policies-9d0fa3c1f1c8615b: examples/migration_policies.rs

examples/migration_policies.rs:
