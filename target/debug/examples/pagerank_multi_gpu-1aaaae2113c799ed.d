/root/repo/target/debug/examples/pagerank_multi_gpu-1aaaae2113c799ed.d: examples/pagerank_multi_gpu.rs

/root/repo/target/debug/examples/libpagerank_multi_gpu-1aaaae2113c799ed.rmeta: examples/pagerank_multi_gpu.rs

examples/pagerank_multi_gpu.rs:
