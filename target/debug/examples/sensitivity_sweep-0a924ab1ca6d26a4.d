/root/repo/target/debug/examples/sensitivity_sweep-0a924ab1ca6d26a4.d: examples/sensitivity_sweep.rs

/root/repo/target/debug/examples/libsensitivity_sweep-0a924ab1ca6d26a4.rmeta: examples/sensitivity_sweep.rs

examples/sensitivity_sweep.rs:
