/root/repo/target/debug/examples/sensitivity_sweep-cb3d3f7acb50d73a.d: examples/sensitivity_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libsensitivity_sweep-cb3d3f7acb50d73a.rmeta: examples/sensitivity_sweep.rs Cargo.toml

examples/sensitivity_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
