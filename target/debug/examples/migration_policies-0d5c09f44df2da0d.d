/root/repo/target/debug/examples/migration_policies-0d5c09f44df2da0d.d: examples/migration_policies.rs Cargo.toml

/root/repo/target/debug/examples/libmigration_policies-0d5c09f44df2da0d.rmeta: examples/migration_policies.rs Cargo.toml

examples/migration_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
