/root/repo/target/debug/examples/quickstart-c0b1101bef37f451.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c0b1101bef37f451: examples/quickstart.rs

examples/quickstart.rs:
