/root/repo/target/debug/examples/quickstart-28c7d70154bb8135.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-28c7d70154bb8135.rmeta: examples/quickstart.rs

examples/quickstart.rs:
