/root/repo/target/debug/examples/dnn_training-6d32712552dd7d56.d: examples/dnn_training.rs Cargo.toml

/root/repo/target/debug/examples/libdnn_training-6d32712552dd7d56.rmeta: examples/dnn_training.rs Cargo.toml

examples/dnn_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
