/root/repo/target/release/deps/mgpu_sim-ae0c2b395af0aaa4.d: crates/mgpu-system/src/bin/mgpu-sim.rs

/root/repo/target/release/deps/mgpu_sim-ae0c2b395af0aaa4: crates/mgpu-system/src/bin/mgpu-sim.rs

crates/mgpu-system/src/bin/mgpu-sim.rs:
