/root/repo/target/release/deps/mem_model-8f80ed2fe87ebccf.d: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs

/root/repo/target/release/deps/libmem_model-8f80ed2fe87ebccf.rlib: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs

/root/repo/target/release/deps/libmem_model-8f80ed2fe87ebccf.rmeta: crates/mem-model/src/lib.rs crates/mem-model/src/assoc.rs crates/mem-model/src/cache.rs crates/mem-model/src/dram.rs crates/mem-model/src/gpuset.rs crates/mem-model/src/interconnect.rs crates/mem-model/src/mshr.rs

crates/mem-model/src/lib.rs:
crates/mem-model/src/assoc.rs:
crates/mem-model/src/cache.rs:
crates/mem-model/src/dram.rs:
crates/mem-model/src/gpuset.rs:
crates/mem-model/src/interconnect.rs:
crates/mem-model/src/mshr.rs:
