/root/repo/target/release/deps/dbg_livelock-76d1a1686cbcbd91.d: crates/bench/src/bin/dbg_livelock.rs

/root/repo/target/release/deps/dbg_livelock-76d1a1686cbcbd91: crates/bench/src/bin/dbg_livelock.rs

crates/bench/src/bin/dbg_livelock.rs:
