/root/repo/target/release/deps/fig07-7e8ad89767bed820.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-7e8ad89767bed820: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
