/root/repo/target/release/deps/fig17-f1f84245e73d0602.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-f1f84245e73d0602: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
