/root/repo/target/release/deps/fig11-7d47cabfc219c9b3.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-7d47cabfc219c9b3: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
