/root/repo/target/release/deps/fig06-a422af3b4ebfbc62.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-a422af3b4ebfbc62: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
