/root/repo/target/release/deps/fig01-a009bfb7f3e996bc.d: crates/bench/src/bin/fig01.rs

/root/repo/target/release/deps/fig01-a009bfb7f3e996bc: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
