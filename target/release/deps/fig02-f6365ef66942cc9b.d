/root/repo/target/release/deps/fig02-f6365ef66942cc9b.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-f6365ef66942cc9b: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
