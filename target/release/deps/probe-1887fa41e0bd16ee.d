/root/repo/target/release/deps/probe-1887fa41e0bd16ee.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-1887fa41e0bd16ee: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
