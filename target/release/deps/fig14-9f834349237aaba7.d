/root/repo/target/release/deps/fig14-9f834349237aaba7.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-9f834349237aaba7: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
