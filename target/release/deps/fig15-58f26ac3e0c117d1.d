/root/repo/target/release/deps/fig15-58f26ac3e0c117d1.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-58f26ac3e0c117d1: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
