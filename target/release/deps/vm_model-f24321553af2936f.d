/root/repo/target/release/deps/vm_model-f24321553af2936f.d: crates/vm-model/src/lib.rs crates/vm-model/src/addr.rs crates/vm-model/src/memmap.rs crates/vm-model/src/page_table.rs crates/vm-model/src/pte.rs crates/vm-model/src/pwc.rs crates/vm-model/src/tlb.rs crates/vm-model/src/walker.rs

/root/repo/target/release/deps/libvm_model-f24321553af2936f.rlib: crates/vm-model/src/lib.rs crates/vm-model/src/addr.rs crates/vm-model/src/memmap.rs crates/vm-model/src/page_table.rs crates/vm-model/src/pte.rs crates/vm-model/src/pwc.rs crates/vm-model/src/tlb.rs crates/vm-model/src/walker.rs

/root/repo/target/release/deps/libvm_model-f24321553af2936f.rmeta: crates/vm-model/src/lib.rs crates/vm-model/src/addr.rs crates/vm-model/src/memmap.rs crates/vm-model/src/page_table.rs crates/vm-model/src/pte.rs crates/vm-model/src/pwc.rs crates/vm-model/src/tlb.rs crates/vm-model/src/walker.rs

crates/vm-model/src/lib.rs:
crates/vm-model/src/addr.rs:
crates/vm-model/src/memmap.rs:
crates/vm-model/src/page_table.rs:
crates/vm-model/src/pte.rs:
crates/vm-model/src/pwc.rs:
crates/vm-model/src/tlb.rs:
crates/vm-model/src/walker.rs:
