/root/repo/target/release/deps/all_figures-6222d20200a8c542.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-6222d20200a8c542: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
