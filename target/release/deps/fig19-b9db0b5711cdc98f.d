/root/repo/target/release/deps/fig19-b9db0b5711cdc98f.d: crates/bench/src/bin/fig19.rs

/root/repo/target/release/deps/fig19-b9db0b5711cdc98f: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
