/root/repo/target/release/deps/fig21-4259f275ca29ca26.d: crates/bench/src/bin/fig21.rs

/root/repo/target/release/deps/fig21-4259f275ca29ca26: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
