/root/repo/target/release/deps/fig12-104be8507d190e6e.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-104be8507d190e6e: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
