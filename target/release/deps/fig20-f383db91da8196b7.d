/root/repo/target/release/deps/fig20-f383db91da8196b7.d: crates/bench/src/bin/fig20.rs

/root/repo/target/release/deps/fig20-f383db91da8196b7: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
