/root/repo/target/release/deps/table2-2d0987aee1c69e23.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-2d0987aee1c69e23: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
