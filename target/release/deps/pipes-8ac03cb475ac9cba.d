/root/repo/target/release/deps/pipes-8ac03cb475ac9cba.d: crates/bench/src/bin/pipes.rs

/root/repo/target/release/deps/pipes-8ac03cb475ac9cba: crates/bench/src/bin/pipes.rs

crates/bench/src/bin/pipes.rs:
