/root/repo/target/release/deps/fig16-e5939f5bd978bb13.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-e5939f5bd978bb13: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
