/root/repo/target/release/deps/ablations-1d037f7695e88f0e.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-1d037f7695e88f0e: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
