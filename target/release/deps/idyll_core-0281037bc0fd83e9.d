/root/repo/target/release/deps/idyll_core-0281037bc0fd83e9.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

/root/repo/target/release/deps/libidyll_core-0281037bc0fd83e9.rlib: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

/root/repo/target/release/deps/libidyll_core-0281037bc0fd83e9.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/directory.rs crates/core/src/irmb.rs crates/core/src/transfw.rs crates/core/src/vm_table.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/directory.rs:
crates/core/src/irmb.rs:
crates/core/src/transfw.rs:
crates/core/src/vm_table.rs:
