/root/repo/target/release/deps/fig18-f8add6666f11c990.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-f8add6666f11c990: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
