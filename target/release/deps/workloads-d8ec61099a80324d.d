/root/repo/target/release/deps/workloads-d8ec61099a80324d.d: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libworkloads-d8ec61099a80324d.rlib: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libworkloads-d8ec61099a80324d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dnn.rs crates/workloads/src/gen.rs crates/workloads/src/serialize.rs crates/workloads/src/spec.rs crates/workloads/src/stats.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dnn.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/serialize.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/stats.rs:
crates/workloads/src/trace.rs:
