/root/repo/target/release/deps/idyll-482cac362b8fcfb3.d: src/lib.rs

/root/repo/target/release/deps/libidyll-482cac362b8fcfb3.rlib: src/lib.rs

/root/repo/target/release/deps/libidyll-482cac362b8fcfb3.rmeta: src/lib.rs

src/lib.rs:
