/root/repo/target/release/deps/uvm_driver-24ae7a7960403727.d: crates/uvm-driver/src/lib.rs crates/uvm-driver/src/fault.rs crates/uvm-driver/src/host.rs crates/uvm-driver/src/migration.rs crates/uvm-driver/src/policy.rs crates/uvm-driver/src/prefetch.rs crates/uvm-driver/src/replication.rs

/root/repo/target/release/deps/libuvm_driver-24ae7a7960403727.rlib: crates/uvm-driver/src/lib.rs crates/uvm-driver/src/fault.rs crates/uvm-driver/src/host.rs crates/uvm-driver/src/migration.rs crates/uvm-driver/src/policy.rs crates/uvm-driver/src/prefetch.rs crates/uvm-driver/src/replication.rs

/root/repo/target/release/deps/libuvm_driver-24ae7a7960403727.rmeta: crates/uvm-driver/src/lib.rs crates/uvm-driver/src/fault.rs crates/uvm-driver/src/host.rs crates/uvm-driver/src/migration.rs crates/uvm-driver/src/policy.rs crates/uvm-driver/src/prefetch.rs crates/uvm-driver/src/replication.rs

crates/uvm-driver/src/lib.rs:
crates/uvm-driver/src/fault.rs:
crates/uvm-driver/src/host.rs:
crates/uvm-driver/src/migration.rs:
crates/uvm-driver/src/policy.rs:
crates/uvm-driver/src/prefetch.rs:
crates/uvm-driver/src/replication.rs:
