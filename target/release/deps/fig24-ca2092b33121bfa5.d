/root/repo/target/release/deps/fig24-ca2092b33121bfa5.d: crates/bench/src/bin/fig24.rs

/root/repo/target/release/deps/fig24-ca2092b33121bfa5: crates/bench/src/bin/fig24.rs

crates/bench/src/bin/fig24.rs:
