/root/repo/target/release/deps/dbg_audit-6a28b33bcd3033e5.d: crates/bench/src/bin/dbg_audit.rs

/root/repo/target/release/deps/dbg_audit-6a28b33bcd3033e5: crates/bench/src/bin/dbg_audit.rs

crates/bench/src/bin/dbg_audit.rs:
