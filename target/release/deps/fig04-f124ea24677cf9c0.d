/root/repo/target/release/deps/fig04-f124ea24677cf9c0.d: crates/bench/src/bin/fig04.rs

/root/repo/target/release/deps/fig04-f124ea24677cf9c0: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
