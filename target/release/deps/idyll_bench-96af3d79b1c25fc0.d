/root/repo/target/release/deps/idyll_bench-96af3d79b1c25fc0.d: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

/root/repo/target/release/deps/libidyll_bench-96af3d79b1c25fc0.rlib: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

/root/repo/target/release/deps/libidyll_bench-96af3d79b1c25fc0.rmeta: crates/bench/src/lib.rs crates/bench/src/grid_metrics.rs

crates/bench/src/lib.rs:
crates/bench/src/grid_metrics.rs:
