/root/repo/target/release/deps/fig23-6fbd229c082f832f.d: crates/bench/src/bin/fig23.rs

/root/repo/target/release/deps/fig23-6fbd229c082f832f: crates/bench/src/bin/fig23.rs

crates/bench/src/bin/fig23.rs:
