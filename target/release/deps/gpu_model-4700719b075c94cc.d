/root/repo/target/release/deps/gpu_model-4700719b075c94cc.d: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs

/root/repo/target/release/deps/libgpu_model-4700719b075c94cc.rlib: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs

/root/repo/target/release/deps/libgpu_model-4700719b075c94cc.rmeta: crates/gpu-model/src/lib.rs crates/gpu-model/src/cu.rs crates/gpu-model/src/gmmu.rs crates/gpu-model/src/gpu.rs crates/gpu-model/src/scheduler.rs

crates/gpu-model/src/lib.rs:
crates/gpu-model/src/cu.rs:
crates/gpu-model/src/gmmu.rs:
crates/gpu-model/src/gpu.rs:
crates/gpu-model/src/scheduler.rs:
