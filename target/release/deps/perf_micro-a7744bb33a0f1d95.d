/root/repo/target/release/deps/perf_micro-a7744bb33a0f1d95.d: crates/bench/src/bin/perf_micro.rs

/root/repo/target/release/deps/perf_micro-a7744bb33a0f1d95: crates/bench/src/bin/perf_micro.rs

crates/bench/src/bin/perf_micro.rs:
