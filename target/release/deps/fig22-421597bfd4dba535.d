/root/repo/target/release/deps/fig22-421597bfd4dba535.d: crates/bench/src/bin/fig22.rs

/root/repo/target/release/deps/fig22-421597bfd4dba535: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
