/root/repo/target/release/deps/fig13-863eceeb125f1181.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-863eceeb125f1181: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
