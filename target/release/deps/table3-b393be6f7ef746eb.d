/root/repo/target/release/deps/table3-b393be6f7ef746eb.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-b393be6f7ef746eb: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
