/root/repo/target/release/deps/fig05-c07c9957a398b41b.d: crates/bench/src/bin/fig05.rs

/root/repo/target/release/deps/fig05-c07c9957a398b41b: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
