//! Reproduces the paper's Figure 2 motivation: access-counter-based
//! migration beats both first-touch (NUMA penalty) and on-touch
//! (ping-pong penalty), and an ideal zero-cost-invalidation system shows
//! how much the invalidation overhead costs.
//!
//! Run with: `cargo run --release --example migration_policies`

use idyll::prelude::*;

fn main() {
    let scale = Scale::Small;
    let counter = MigrationPolicy::AccessCounter {
        threshold: scale.counter_threshold(),
    };
    println!(
        "{:<6}{:>16}{:>16}{:>16}{:>16}",
        "app", "counter", "first-touch", "on-touch", "zero-lat-inv"
    );
    for app in [AppId::Mm, AppId::Km, AppId::St, AppId::Bs] {
        let spec = WorkloadSpec::paper_default(app, scale);
        let wl = workloads::generate(&spec, 4, 42);
        let run = |policy: MigrationPolicy, zero: bool| {
            let mut cfg = SystemConfig::baseline(4);
            cfg.policy = policy;
            cfg.zero_latency_invalidation = zero;
            System::new(cfg, &wl).run().expect("completes").exec_cycles as f64
        };
        let base = run(counter, false);
        println!(
            "{:<6}{:>15.2}x{:>15.2}x{:>15.2}x{:>15.2}x",
            app.name(),
            1.0,
            base / run(MigrationPolicy::FirstTouch, false),
            base / run(MigrationPolicy::OnTouch, false),
            base / run(counter, true),
        );
    }
    println!("\n(>1.0 = faster than counter-based; the paper finds first-touch and");
    println!("on-touch generally lose, while eliminating invalidation costs wins.)");
}
