//! PageRank across 4 GPUs: the paper's highest-sharing workload (Figure 4:
//! nearly all accesses go to pages shared by all GPUs) and its biggest
//! IDYLL winner (2.67x in Figure 11).
//!
//! Walks through the full scheme ladder — baseline, each IDYLL mechanism in
//! isolation, the combination, and the zero-latency-invalidation ideal —
//! and reports the mechanism-level statistics that explain the speedups.
//!
//! Run with: `cargo run --release --example pagerank_multi_gpu`

use idyll::prelude::*;

fn main() {
    let scale = Scale::Small;
    let policy = MigrationPolicy::AccessCounter {
        threshold: scale.counter_threshold(),
    };
    let spec = WorkloadSpec::paper_default(AppId::Pr, scale);
    let workload = workloads::generate(&spec, 4, 42);
    let dist = workload.access_sharing_distribution();
    println!(
        "PageRank sharing profile: {:.0}% of accesses touch pages shared by all 4 GPUs\n",
        dist[3] * 100.0
    );

    let mk = |idyll: Option<IdyllConfig>, zero: bool| {
        let mut cfg = SystemConfig::baseline(4);
        cfg.policy = policy;
        cfg.idyll = idyll;
        cfg.zero_latency_invalidation = zero;
        cfg
    };
    let schemes = [
        ("baseline", mk(None, false)),
        (
            "only lazy (IRMB)",
            mk(Some(IdyllConfig::only_lazy()), false),
        ),
        (
            "only in-PTE directory",
            mk(Some(IdyllConfig::only_directory()), false),
        ),
        ("IDYLL-InMem", mk(Some(IdyllConfig::in_mem()), false)),
        ("IDYLL", mk(Some(IdyllConfig::full()), false)),
        ("zero-latency invalidation", mk(None, true)),
    ];

    let mut base_cycles = 0u64;
    println!(
        "{:<28}{:>10}{:>9}{:>11}{:>11}{:>12}",
        "scheme", "cycles", "speedup", "inv msgs", "IRMB hits", "mig wait"
    );
    for (name, cfg) in schemes {
        let r = System::new(cfg, &workload).run().expect("completes");
        if base_cycles == 0 {
            base_cycles = r.exec_cycles;
        }
        println!(
            "{:<28}{:>10}{:>8.2}x{:>11}{:>11}{:>12.0}",
            name,
            r.exec_cycles,
            base_cycles as f64 / r.exec_cycles as f64,
            r.invalidation_messages,
            r.irmb_bypasses,
            r.migration_waiting.mean().unwrap_or(0.0),
        );
    }
    println!("\n(The IRMB-hit column counts demand misses that bypassed the local");
    println!("page-table walk because a pending invalidation proved the PTE stale —");
    println!("the short-circuit that lets IDYLL beat even the zero-latency ideal on");
    println!("some workloads, per §7.1 of the paper.)");
}
