//! Sensitivity sweep over the IRMB geometry (the paper's Figure 15) on one
//! workload, demonstrating direct use of the `IrmbConfig` knob.
//!
//! Run with: `cargo run --release --example sensitivity_sweep`

use idyll::prelude::*;

fn main() {
    let scale = Scale::Small;
    let policy = MigrationPolicy::AccessCounter {
        threshold: scale.counter_threshold(),
    };
    let spec = WorkloadSpec::paper_default(AppId::Im, scale);
    let wl = workloads::generate(&spec, 4, 42);

    let mut base_cfg = SystemConfig::baseline(4);
    base_cfg.policy = policy;
    let base = System::new(base_cfg, &wl).run().expect("completes");
    println!("IM baseline: {} cycles", base.exec_cycles);
    println!(
        "{:>14}{:>12}{:>10}{:>14}{:>14}",
        "IRMB (b,o)", "bytes", "speedup", "evictions", "superseded"
    );
    for (bases, offsets) in [(16, 8), (16, 16), (32, 8), (32, 16), (64, 16)] {
        let irmb = IrmbConfig::new(bases, offsets);
        let mut cfg = SystemConfig::baseline(4);
        cfg.policy = policy;
        cfg.idyll = Some(IdyllConfig {
            irmb,
            ..IdyllConfig::full()
        });
        let r = System::new(cfg, &wl).run().expect("completes");
        println!(
            "{:>14}{:>12}{:>9.2}x{:>14}{:>14}",
            format!("({bases},{offsets})"),
            irmb.size_bits() / 8,
            r.speedup_vs(&base),
            r.irmb_evictions,
            r.irmb_superseded,
        );
    }
    println!("\n(Bigger IRMBs buffer more invalidations before forced write-back");
    println!("batches — the paper picks (32,16) = 720 bytes as the sweet spot.)");
}
