//! Layer-parallel DNN inference/training traffic across 4 GPUs (§7.6).
//!
//! Weights live with their layer's GPU; activations flow between pipeline
//! stages; optimizer sweeps touch every layer's weights — the cross-GPU
//! weight sharing that causes page migrations and PTE invalidations.
//!
//! Run with: `cargo run --release --example dnn_training`

use idyll::prelude::*;
use idyll::workloads::dnn::{generate_dnn, DnnModel, DnnSpec};

fn main() {
    let policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Small.counter_threshold(),
    };
    for model in [DnnModel::Vgg16, DnnModel::Resnet18] {
        let spec = DnnSpec::paper_default(model);
        let workload = generate_dnn(&spec, 4, 7);
        let mut base_cfg = SystemConfig::baseline(4);
        base_cfg.policy = policy;
        let mut idy_cfg = SystemConfig::idyll(4);
        idy_cfg.policy = policy;

        let base = System::new(base_cfg, &workload).run().expect("completes");
        let idy = System::new(idy_cfg, &workload).run().expect("completes");
        println!(
            "{:<9}: {:>8} accesses, {:>5} migrations, {:>6} invalidation msgs → IDYLL speedup {:.3}x (paper: VGG16 1.159x, ResNet18 1.120x)",
            model.name(),
            workload.total_accesses(),
            base.migrations,
            base.invalidation_messages,
            idy.speedup_vs(&base)
        );
    }
}
