//! Quickstart: simulate one multi-GPU workload under the baseline and under
//! IDYLL, and print the headline numbers.
//!
//! Run with: `cargo run --release --example quickstart`

use idyll::prelude::*;

fn main() {
    // A 4-GPU system with the paper's Table 2 parameters and the scaled
    // access-counter migration policy.
    let scale = Scale::Small;
    let policy = MigrationPolicy::AccessCounter {
        threshold: scale.counter_threshold(),
    };
    let mut baseline = SystemConfig::baseline(4);
    baseline.policy = policy;
    let mut idyll_cfg = SystemConfig::idyll(4);
    idyll_cfg.policy = policy;

    // KMeans: adjacent partitioning with centroid pages shared by all GPUs —
    // a migration-heavy workload.
    let spec = WorkloadSpec::paper_default(AppId::Km, scale);
    let workload = workloads::generate(&spec, 4, 42);
    println!(
        "workload: {} ({} accesses over {} pages, {} GPUs)",
        workload.name,
        workload.total_accesses(),
        workload.pages,
        workload.traces.len()
    );

    let base = System::new(baseline, &workload)
        .run()
        .expect("baseline completes");
    let idy = System::new(idyll_cfg, &workload)
        .run()
        .expect("idyll completes");

    println!("\n{:<28}{:>14}{:>14}", "", "baseline", "IDYLL");
    let rows: [(&str, f64, f64); 6] = [
        (
            "execution cycles",
            base.exec_cycles as f64,
            idy.exec_cycles as f64,
        ),
        ("L2 TLB MPKI", base.mpki(), idy.mpki()),
        ("far faults", base.far_faults as f64, idy.far_faults as f64),
        (
            "page migrations",
            base.migrations as f64,
            idy.migrations as f64,
        ),
        (
            "invalidation messages",
            base.invalidation_messages as f64,
            idy.invalidation_messages as f64,
        ),
        (
            "demand miss latency (avg)",
            base.demand_miss_latency.mean().unwrap_or(0.0),
            idy.demand_miss_latency.mean().unwrap_or(0.0),
        ),
    ];
    for (label, b, i) in rows {
        println!("{label:<28}{b:>14.1}{i:>14.1}");
    }
    println!(
        "\nIDYLL speedup over baseline: {:.2}x",
        idy.speedup_vs(&base)
    );
}
