#!/usr/bin/env bash
# Workspace determinism lint — the same invocation CI runs.
#
#   scripts/lint.sh              # check against the committed baseline
#   scripts/lint.sh --write-baseline   # grandfather current findings (use sparingly)
#
# Exit codes: 0 clean, 1 findings outside the baseline, 2 usage/IO error.
set -euo pipefail

cd "$(dirname "$0")/.."
exec cargo run -q -p simlint -- --check "$@"
