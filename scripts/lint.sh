#!/usr/bin/env bash
# Workspace lint — the same invocation CI runs.
#
#   scripts/lint.sh                    # simlint (strict) + pinned clippy
#   scripts/lint.sh --sarif out.sarif  # …also write a SARIF 2.1.0 log (non-blocking)
#   scripts/lint.sh --effects out.json # …also dump the effect-inference summaries
#   scripts/lint.sh --write-baseline   # grandfather current findings (use sparingly)
#   scripts/lint.sh --write-canon      # refresh simlint.canon after a shape+version bump
#
# Exit codes: 0 clean, 1 findings outside the baseline (or stale baseline
# entries / stale inline allows — strict mode), 2 usage/IO error.
set -euo pipefail

cd "$(dirname "$0")/.."

# Maintenance flags (--write-baseline / --write-canon) bypass the check run.
for arg in "$@"; do
  case "$arg" in
    --write-baseline|--write-canon)
      exec cargo run -q -p simlint -- "$arg"
      ;;
  esac
done

# --sarif <file>: write the SARIF log for CI code-scanning upload before the
# blocking gate, so annotations exist even when the strict run fails. The
# SARIF pass never blocks; the --check --strict run below is the gate.
sarif_out=""
effects_out=""
pass_args=()
while [ $# -gt 0 ]; do
  case "$1" in
    --sarif)
      sarif_out="${2:?--sarif needs a file}"
      shift 2
      ;;
    --effects)
      effects_out="${2:?--effects needs a file}"
      shift 2
      ;;
    *)
      pass_args+=("$1")
      shift
      ;;
  esac
done

if [ -n "$sarif_out" ]; then
  cargo run -q -p simlint -- --check --strict --format sarif \
    ${pass_args[0]+"${pass_args[@]}"} > "$sarif_out" || true
fi

# --effects <file>: dump the interprocedural effect summaries (byte-stable
# JSON, DESIGN.md §10) as a CI artifact next to the SARIF log. Like the
# SARIF pass this never blocks; it exists so a reviewer can diff summaries
# across commits without re-running the scan.
if [ -n "$effects_out" ]; then
  cargo run -q -p simlint -- --effects > "$effects_out" || true
fi

cargo run -q -p simlint -- --check --strict --check-allows \
  ${pass_args[0]+"${pass_args[@]}"}

# Pinned clippy gate. The cast/length pedantic lints are allowed here, in one
# place, instead of as scattered `#[allow]` attributes: simlint's lossy-cast
# rule already polices truncating casts in the model crates with per-site
# reasons, and the remaining sites (f64 statistics over counts far below
# 2^52) are deliberate.
cargo clippy -q --workspace --all-targets -- -D warnings \
  -A clippy::too_many_lines \
  -A clippy::cast_possible_truncation \
  -A clippy::cast_precision_loss
