#!/usr/bin/env bash
# Workspace lint — the same invocation CI runs.
#
#   scripts/lint.sh                    # simlint (strict) + pinned clippy
#   scripts/lint.sh --write-baseline   # grandfather current findings (use sparingly)
#   scripts/lint.sh --write-canon      # refresh simlint.canon after a shape+version bump
#
# Exit codes: 0 clean, 1 findings outside the baseline (or stale baseline
# entries — strict mode), 2 usage/IO error.
set -euo pipefail

cd "$(dirname "$0")/.."

# Maintenance flags (--write-baseline / --write-canon) bypass the check run.
for arg in "$@"; do
  case "$arg" in
    --write-baseline|--write-canon)
      exec cargo run -q -p simlint -- "$arg"
      ;;
  esac
done

cargo run -q -p simlint -- --check --strict "$@"

# Pinned clippy gate. The cast/length pedantic lints are allowed here, in one
# place, instead of as scattered `#[allow]` attributes: simlint's lossy-cast
# rule already polices truncating casts in the model crates with per-site
# reasons, and the remaining sites (f64 statistics over counts far below
# 2^52) are deliberate.
cargo clippy -q --workspace --all-targets -- -D warnings \
  -A clippy::too_many_lines \
  -A clippy::cast_possible_truncation \
  -A clippy::cast_precision_loss
