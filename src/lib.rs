//! IDYLL reproduction — umbrella crate.
//!
//! Re-exports the workspace's public surface so downstream users can depend
//! on a single crate:
//!
//! * [`core`] — the IDYLL mechanisms (in-PTE directory, IRMB, IDYLL-InMem,
//!   Trans-FW);
//! * [`system`] — the multi-GPU simulator and experiment runner;
//! * [`workloads`] — the synthetic multi-GPU workload generators;
//! * plus the substrate crates ([`sim`], [`mem`], [`vm`], [`uvm`], [`gpu`]).
//!
//! # Example
//!
//! ```
//! use idyll::prelude::*;
//!
//! let cfg = SystemConfig::idyll(2);
//! let spec = WorkloadSpec::paper_default(AppId::Bs, Scale::Test);
//! let wl = workloads::generate(&spec, 2, 1);
//! let report = System::new(cfg, &wl).run().expect("simulation completes");
//! assert!(report.exec_cycles > 0);
//! ```

pub use gpu_model as gpu;
pub use idyll_core as core;
pub use mem_model as mem;
pub use mgpu_system as system;
pub use sim_engine as sim;
pub use uvm_driver as uvm;
pub use vm_model as vm;
pub use workloads;

/// Convenient re-exports for the common simulation workflow.
pub mod prelude {
    pub use crate::core::directory::{DirectoryConfig, InPteDirectory};
    pub use crate::core::irmb::{Irmb, IrmbConfig};
    pub use crate::core::vm_table::VmDirectory;
    pub use crate::system::config::{DirectoryMode, IdyllConfig, SystemConfig};
    pub use crate::system::{SimReport, System};
    pub use crate::uvm::policy::MigrationPolicy;
    pub use crate::workloads::{AppId, Scale, WorkloadSpec};
}
