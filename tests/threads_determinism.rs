//! Parallel event core determinism (DESIGN.md "Parallel event core"):
//! the per-GPU event lanes must produce byte-identical artifacts — the
//! metrics-registry JSON, the Chrome trace export, and the event count —
//! for ANY worker thread count. The conservative-lookahead schedule is
//! phased identically in serial and parallel mode, so there is nothing a
//! thread may observe that depends on how lanes are packed onto workers.

use idyll::prelude::*;
use idyll::sim::trace::{validate_json, Tracer};

/// One observed run at a given worker-thread count; returns every exported
/// artifact a user could diff.
fn observed_run(cfg: &SystemConfig, seed: u64, threads: usize) -> (String, String, u64, u64) {
    let spec = WorkloadSpec::paper_default(AppId::Km, Scale::Test);
    let wl = workloads::generate(&spec, cfg.n_gpus, seed);
    let mut sys = System::new(cfg.clone(), &wl);
    sys.set_threads(threads);
    sys.set_tracer(Tracer::enabled());
    let report = sys.run().expect("completes");
    (
        sys.tracer().to_chrome_json(),
        sys.metrics_registry().to_json(),
        report.events_processed,
        report.exec_cycles,
    )
}

/// The two configurations the sweep covers: the plain baseline driver and
/// the full IDYLL mechanism set (IRMB + lazy invalidations + directory).
fn sweep_configs() -> Vec<SystemConfig> {
    let mut baseline = SystemConfig::test(4);
    baseline.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    let mut idyll_full = baseline.clone();
    idyll_full.idyll = Some(IdyllConfig::full());
    vec![baseline, idyll_full]
}

#[test]
fn thread_sweep_is_byte_identical() {
    for (ci, cfg) in sweep_configs().iter().enumerate() {
        let (trace1, metrics1, events1, cycles1) = observed_run(cfg, 11, 1);
        validate_json(&trace1).expect("trace export is well-formed");
        for threads in [2usize, 4, 8] {
            let (trace_n, metrics_n, events_n, cycles_n) = observed_run(cfg, 11, threads);
            assert_eq!(
                events1, events_n,
                "config {ci}: event count diverges at threads={threads}"
            );
            assert_eq!(
                cycles1, cycles_n,
                "config {ci}: exec cycles diverge at threads={threads}"
            );
            assert_eq!(
                metrics1, metrics_n,
                "config {ci}: metrics JSON diverges at threads={threads}"
            );
            assert_eq!(
                trace_n, trace1,
                "config {ci}: trace export diverges at threads={threads}"
            );
        }
    }
}

#[test]
fn oversubscribed_threads_clamp_to_lanes() {
    // More workers than lanes (4 GPU lanes here) must behave exactly like
    // a fully-subscribed run, not deadlock or skew the schedule.
    let cfg = &sweep_configs()[1];
    let (trace1, metrics1, events1, _) = observed_run(cfg, 23, 1);
    let (trace16, metrics16, events16, _) = observed_run(cfg, 23, 16);
    assert_eq!(events1, events16);
    assert_eq!(metrics1, metrics16);
    assert_eq!(trace1, trace16);
}
