//! Stress and failure-injection tests: tiny structural resources force the
//! back-pressure, overflow and out-of-memory paths that normal-sized runs
//! rarely exercise. Everything must still complete coherently.

use idyll::core::irmb::IrmbConfig;
use idyll::prelude::*;
use idyll::vm::tlb::TlbConfig;

fn base() -> SystemConfig {
    let mut cfg = SystemConfig::test(4);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    cfg
}

fn run(cfg: SystemConfig, app: AppId) -> SimReport {
    let spec = WorkloadSpec::paper_default(app, Scale::Test);
    let wl = workloads::generate(&spec, cfg.n_gpus, 42);
    let expected = wl.total_accesses();
    let r = System::new(cfg, &wl).run().expect("completes under stress");
    assert_eq!(r.accesses, expected);
    assert_eq!(r.stale_translations, 0);
    r
}

#[test]
fn single_entry_walk_queue_backpressures_but_completes() {
    let mut cfg = base();
    cfg.gpu.gmmu.walk_queue_entries = 1;
    run(cfg, AppId::Pr);
}

#[test]
fn single_walker_thread_serialises_everything() {
    let mut cfg = base();
    cfg.gpu.gmmu.walker_threads = 1;
    let r = run(cfg, AppId::Km);
    // With one walker the demand-miss latency must exceed the multi-walker
    // baseline's.
    let many = run(base(), AppId::Km);
    assert!(
        r.demand_miss_latency.mean().unwrap_or(0.0)
            >= many.demand_miss_latency.mean().unwrap_or(0.0),
        "one walker cannot be faster than eight"
    );
}

#[test]
fn tiny_mshr_forces_structural_stalls() {
    let mut cfg = base();
    cfg.gpu.l2_mshr_entries = 2;
    run(cfg, AppId::Mt);
}

#[test]
fn minimal_pwc_still_correct() {
    let mut cfg = base();
    cfg.gpu.gmmu.pwc_entries = 4;
    let r = run(cfg, AppId::Pr);
    assert!(r.pwc_hit_rate < 1.0);
}

#[test]
fn one_by_one_irmb_thrashes_but_stays_coherent() {
    let mut cfg = base();
    cfg.idyll = Some(IdyllConfig {
        irmb: IrmbConfig::new(1, 1),
        ..IdyllConfig::full()
    });
    let r = run(cfg, AppId::Mm);
    assert!(
        r.irmb_evictions > 0,
        "a (1,1) IRMB must evict under migration load"
    );
}

#[test]
fn tiny_l1_and_l2_tlbs_complete() {
    let mut cfg = base();
    cfg.gpu.l1_tlb = TlbConfig {
        entries: 2,
        ways: 2,
        latency: sim_engine::Cycle(1),
    };
    cfg.gpu.l2_tlb = TlbConfig {
        entries: 16,
        ways: 4,
        latency: sim_engine::Cycle(10),
    };
    let r = run(cfg, AppId::Sc);
    assert!(r.l2_tlb_misses > 0);
}

#[test]
fn scarce_device_frames_degrade_gracefully() {
    // Barely more frames per device than the per-GPU footprint share: the
    // allocator exercises its recycle and failure paths (replication
    // especially).
    let mut cfg = base();
    cfg.frames_per_device = 700;
    cfg.replication = true;
    run(cfg, AppId::Bs);
}

#[test]
fn tiny_fault_batches_and_windows() {
    let mut cfg = base();
    cfg.host.fault_batch = 2;
    cfg.host.batch_window = sim_engine::Cycle(50);
    run(cfg, AppId::St);
}

#[test]
fn single_host_walker_serialises_driver_work() {
    let mut cfg = base();
    cfg.host.walk_threads = 1;
    run(cfg, AppId::Km);
}

#[test]
fn zero_cooldown_allows_maximum_ping_pong() {
    let mut cfg = base();
    cfg.host.migration_cooldown = sim_engine::Cycle(0);
    cfg.policy = MigrationPolicy::OnTouch;
    // On-touch with no throttle is the worst case; it must still terminate
    // within the event bound.
    run(cfg, AppId::Sc);
}

#[test]
fn combined_worst_case_configuration() {
    let mut cfg = base();
    cfg.gpu.gmmu.walk_queue_entries = 2;
    cfg.gpu.gmmu.walker_threads = 1;
    cfg.gpu.l2_mshr_entries = 4;
    cfg.gpu.gmmu.pwc_entries = 4;
    cfg.idyll = Some(IdyllConfig {
        irmb: IrmbConfig::new(2, 2),
        ..IdyllConfig::full()
    });
    run(cfg, AppId::Km);
}
