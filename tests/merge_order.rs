//! Properties of the parallel event core's deterministic merge rule.
//!
//! The engine orders cross-lane events by [`MergeKey`] — `(cycle, lane id,
//! per-lane seq)` — and DESIGN.md claims this is (a) a total order and
//! (b) equal to the delivery order of the seed's single global heap keyed
//! by `(cycle, global seq)` under the lane-major scheduling discipline the
//! barrier enforces: within an epoch, same-cycle events are routed to lanes
//! in fixed lane order, so the global sequence numbers of same-cycle events
//! agree with `(lane, per-lane seq)`. (Same-cycle pairs scheduled in
//! *different* epochs may be delivered in either order; the lookahead
//! contract makes them commute, which the end-to-end thread-sweep test in
//! `threads_determinism.rs` verifies at the artifact level.) Both claims
//! are checked here against random schedules.

use idyll::sim::event::EventQueue;
use idyll::sim::lane::{LaneQueue, MergeKey};
use idyll::sim::Cycle;
use proptest::prelude::*;

const LANES: usize = 4;
/// Cycle span of one scheduling round. Rounds schedule into disjoint
/// windows, mirroring how a barrier epoch only creates events at or above
/// the horizon that closed the previous epoch.
const WINDOW: u64 = 32;

/// Generated schedule: for each round, for each lane (in lane order, as the
/// barrier routes), a batch of event delivery offsets within the window.
fn rounds() -> impl Strategy<Value = Vec<Vec<Vec<u64>>>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0u64..WINDOW, 0..8), LANES..LANES),
        1..6,
    )
}

fn merge_keys() -> impl Strategy<Value = Vec<MergeKey>> {
    prop::collection::vec(
        (0u64..16, 0u32..4, 0u64..16).prop_map(|(at, lane, seq)| MergeKey {
            at: Cycle(at),
            lane,
            seq,
        }),
        3..3,
    )
}

/// Pops the merged head across lanes: least `(cycle, lane id)` wins;
/// per-lane seq order is implied because each lane's own heap is FIFO
/// within a cycle. Returns `None` when every lane head is at or above
/// `horizon` (or all lanes are drained).
fn merged_pop(lanes: &mut [LaneQueue<u64>], horizon: Option<Cycle>) -> Option<(Cycle, u64)> {
    let (t, l) = lanes
        .iter()
        .enumerate()
        .filter_map(|(l, q)| q.peek_time().map(|t| (t, l)))
        .min()?;
    if horizon.is_some_and(|h| t >= h) {
        return None;
    }
    let popped = lanes[l].pop().expect("peeked lane pops");
    Some(popped)
}

proptest! {
    // The merge rule reproduces the seed global-heap order: schedule the
    // same events lane-major into (a) one global heap with a global
    // sequence counter and (b) per-lane queues merged by
    // (cycle, lane, seq); both must deliver the same stream.
    #[test]
    fn merge_rule_equals_global_heap_order(rounds in rounds()) {
        let mut global: EventQueue<u64> = EventQueue::new();
        let mut lanes: Vec<LaneQueue<u64>> =
            (0..LANES).map(|_| LaneQueue::new()).collect();
        let mut tag = 0u64;
        for (r, round) in rounds.iter().enumerate() {
            let base = r as u64 * WINDOW;
            for (lane, batch) in round.iter().enumerate() {
                for &offset in batch {
                    let at = Cycle(base + offset);
                    global.schedule(at, tag);
                    lanes[lane].schedule(at, tag);
                    tag += 1;
                }
            }
            // Drain only the first half of the window before the next
            // round, so later rounds schedule while earlier events are
            // still pending (as epochs do).
            let horizon = Cycle(base + WINDOW / 2);
            while let Some(merged) = merged_pop(&mut lanes, Some(horizon)) {
                let reference = global.pop().expect("global heap has the same events");
                prop_assert_eq!(merged, reference,
                    "merged delivery diverges from the seed global heap");
            }
        }
        // Drain the tails with no horizon.
        while let Some(merged) = merged_pop(&mut lanes, None) {
            let reference = global.pop().expect("global heap has the same events");
            prop_assert_eq!(merged, reference);
        }
        prop_assert!(global.is_empty(), "global heap must drain with the lanes");
    }

    // MergeKey's derived ordering is a total order: total, antisymmetric,
    // and transitive on arbitrary key triples.
    #[test]
    fn merge_key_is_a_total_order(keys in merge_keys()) {
        let (a, b, c) = (keys[0], keys[1], keys[2]);
        // Totality: every pair compares.
        prop_assert!(a < b || b < a || a == b);
        // Antisymmetry.
        if a <= b && b <= a {
            prop_assert_eq!(a, b);
        }
        // Transitivity across the sampled triple.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Consistency with the lexicographic definition.
        let lex = (a.at, a.lane, a.seq).cmp(&(b.at, b.lane, b.seq));
        prop_assert_eq!(a.cmp(&b), lex);
    }
}
