//! Determinism invariant (DESIGN.md invariant 5): identical seed and
//! configuration produce bit-identical results; different seeds diverge.

use idyll::prelude::*;

fn run_once(seed: u64, idyll_on: bool) -> SimReport {
    let mut cfg = SystemConfig::test(4);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    if idyll_on {
        cfg.idyll = Some(IdyllConfig::full());
    }
    let spec = WorkloadSpec::paper_default(AppId::Km, Scale::Test);
    let wl = workloads::generate(&spec, 4, seed);
    System::new(cfg, &wl).run().expect("completes")
}

#[test]
fn identical_seeds_are_bit_identical() {
    for idyll_on in [false, true] {
        let a = run_once(11, idyll_on);
        let b = run_once(11, idyll_on);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.far_faults, b.far_faults);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.invalidation_messages, b.invalidation_messages);
        assert_eq!(a.l2_tlb_misses, b.l2_tlb_misses);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(
            a.demand_miss_latency.sum(),
            b.demand_miss_latency.sum(),
            "latency accounting must be deterministic"
        );
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run_once(1, false);
    let b = run_once(2, false);
    // Different workloads virtually never land on the same cycle count and
    // event count simultaneously.
    assert!(
        a.exec_cycles != b.exec_cycles || a.events_processed != b.events_processed,
        "seeds 1 and 2 produced identical simulations"
    );
}

#[test]
fn report_metadata_round_trips() {
    let r = run_once(5, true);
    assert_eq!(r.scheme, "idyll");
    assert_eq!(r.workload, "KM");
    assert!(r.mpki() > 0.0);
    assert!(!r.summary().is_empty());
}
