//! Determinism invariant (DESIGN.md invariant 5): identical seed and
//! configuration produce bit-identical results — including the trace and
//! metrics exports — and different seeds diverge.

use idyll::prelude::*;
use idyll::sim::trace::{validate_json, Tracer};

fn run_once(seed: u64, idyll_on: bool) -> SimReport {
    let mut cfg = SystemConfig::test(4);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    if idyll_on {
        cfg.idyll = Some(IdyllConfig::full());
    }
    let spec = WorkloadSpec::paper_default(AppId::Km, Scale::Test);
    let wl = workloads::generate(&spec, 4, seed);
    System::new(cfg, &wl).run().expect("completes")
}

/// Same configuration, with the tracer installed; returns the two exported
/// artifacts alongside the report.
fn observed_run_once(seed: u64, idyll_on: bool) -> (String, String, SimReport) {
    let mut cfg = SystemConfig::test(4);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    if idyll_on {
        cfg.idyll = Some(IdyllConfig::full());
    }
    let spec = WorkloadSpec::paper_default(AppId::Km, Scale::Test);
    let wl = workloads::generate(&spec, 4, seed);
    let mut sys = System::new(cfg, &wl);
    sys.set_tracer(Tracer::enabled());
    let report = sys.run().expect("completes");
    (
        sys.tracer().to_chrome_json(),
        sys.metrics_registry().to_json(),
        report,
    )
}

#[test]
fn identical_seeds_are_bit_identical() {
    for idyll_on in [false, true] {
        let a = run_once(11, idyll_on);
        let b = run_once(11, idyll_on);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.far_faults, b.far_faults);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.invalidation_messages, b.invalidation_messages);
        assert_eq!(a.l2_tlb_misses, b.l2_tlb_misses);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(
            a.demand_miss_latency.sum(),
            b.demand_miss_latency.sum(),
            "latency accounting must be deterministic"
        );
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run_once(1, false);
    let b = run_once(2, false);
    // Different workloads virtually never land on the same cycle count and
    // event count simultaneously.
    assert!(
        a.exec_cycles != b.exec_cycles || a.events_processed != b.events_processed,
        "seeds 1 and 2 produced identical simulations"
    );
}

#[test]
fn trace_and_metrics_exports_are_byte_identical() {
    for idyll_on in [false, true] {
        let (trace_a, metrics_a, _) = observed_run_once(11, idyll_on);
        let (trace_b, metrics_b, _) = observed_run_once(11, idyll_on);
        assert_eq!(trace_a, trace_b, "trace export must be byte-identical");
        assert_eq!(
            metrics_a, metrics_b,
            "metrics export must be byte-identical"
        );
    }
}

/// Hash-seed independence: model crates use `DetHashMap`/`DetHashSet`
/// (fixed-seed FxHash), and nothing may depend on bucket order. Setting
/// `IDYLL_HASH_SEED` perturbs every map's bucket layout — a hostile seed —
/// and the exported artifacts must still be byte-identical. A failure here
/// means some result flows through hash-map iteration order.
#[test]
fn exports_are_independent_of_hash_seed() {
    let (trace_a, metrics_a, report_a) = observed_run_once(11, true);
    // set_var is safe in edition 2021; DetState::default re-reads the
    // variable on every map construction, so the flip takes effect for all
    // maps built after this point.
    std::env::set_var("IDYLL_HASH_SEED", "0xdeadbeef");
    let (trace_b, metrics_b, report_b) = observed_run_once(11, true);
    std::env::remove_var("IDYLL_HASH_SEED");
    assert_eq!(
        trace_a, trace_b,
        "trace export must not depend on hash-map bucket order"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "metrics export must not depend on hash-map bucket order"
    );
    assert_eq!(report_a.exec_cycles, report_b.exec_cycles);
    assert_eq!(report_a.events_processed, report_b.events_processed);
    assert_eq!(report_a.migrations, report_b.migrations);
    assert_eq!(
        report_a.invalidation_messages,
        report_b.invalidation_messages
    );
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let plain = run_once(11, true);
    let (_, _, traced) = observed_run_once(11, true);
    assert_eq!(plain.exec_cycles, traced.exec_cycles);
    assert_eq!(plain.events_processed, traced.events_processed);
    assert_eq!(plain.far_faults, traced.far_faults);
    assert_eq!(plain.migrations, traced.migrations);
}

#[test]
fn trace_export_is_valid_and_covers_the_lifecycle() {
    let (trace, metrics, report) = observed_run_once(11, true);
    validate_json(&trace).expect("trace export must be valid JSON");
    validate_json(&metrics).expect("metrics export must be valid JSON");
    assert!(report.migrations > 0, "workload must exercise migrations");
    // The full translation lifecycle must appear as connected spans.
    for span in [
        "\"L2 TLB miss\"",
        "\"page walk\"",
        "\"walk queue wait\"",
        "\"far fault\"",
        "\"far fault raised\"",
        "\"fault batch\"",
        "\"invalidation broadcast\"",
        "\"migration data transfer\"",
        "\"migration requested\"",
    ] {
        assert!(trace.contains(span), "trace missing {span}");
    }
    // Track metadata names the processes the spans land on.
    for name in ["gpu0 translation", "migrations", "uvm driver"] {
        assert!(trace.contains(name), "trace missing process {name}");
    }
    // The registry flattens per-component stats under dotted names.
    for metric in [
        "\"sim.events_processed\"",
        "\"gpu0.tlb.l2.misses\"",
        "\"gpu0.gmmu.demand.walk_queue.wait_cycles\"",
        "\"latency.demand_miss\"",
        "\"driver.fault_batches\"",
    ] {
        assert!(metrics.contains(metric), "metrics missing {metric}");
    }
}

#[test]
fn trace_filter_restricts_categories() {
    let mut cfg = SystemConfig::test(4);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    cfg.idyll = Some(IdyllConfig::full());
    let spec = WorkloadSpec::paper_default(AppId::Km, Scale::Test);
    let wl = workloads::generate(&spec, 4, 11);
    let mut sys = System::new(cfg, &wl);
    sys.set_tracer(Tracer::with_filter("migration"));
    sys.run().expect("completes");
    let trace = sys.tracer().to_chrome_json();
    validate_json(&trace).unwrap();
    assert!(trace.contains("\"migration data transfer\""));
    assert!(!trace.contains("\"L2 TLB miss\""));
    assert!(!trace.contains("\"page walk\""));
}

/// The same observed run with a progress callback installed at a cadence
/// low enough to fire many times at test scale; returns the exports plus
/// every heartbeat the callback saw.
fn watched_run_once(
    seed: u64,
    every: u64,
) -> (
    String,
    String,
    SimReport,
    Vec<idyll::system::system::RunProgress>,
) {
    let mut cfg = SystemConfig::test(4);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    cfg.idyll = Some(IdyllConfig::full());
    let spec = WorkloadSpec::paper_default(AppId::Km, Scale::Test);
    let wl = workloads::generate(&spec, 4, seed);
    let mut sys = System::new(cfg, &wl);
    sys.set_tracer(Tracer::enabled());
    let samples = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = std::sync::Arc::clone(&samples);
    sys.set_progress_callback(
        every,
        Box::new(move |p| sink.lock().expect("samples lock").push(p)),
    );
    let report = sys.run().expect("completes");
    let samples = samples.lock().expect("samples lock").clone();
    (
        sys.tracer().to_chrome_json(),
        sys.metrics_registry().to_json(),
        report,
        samples,
    )
}

/// A `watch`-style progress subscription is pure observation: the exported
/// trace and metrics must stay byte-identical to an unwatched run, and the
/// heartbeats themselves must be monotone.
#[test]
fn progress_callback_does_not_perturb_exports() {
    let (trace_plain, metrics_plain, report_plain) = observed_run_once(11, true);
    let (trace_watched, metrics_watched, report_watched, samples) = watched_run_once(11, 500);
    assert!(
        !samples.is_empty(),
        "cadence 500 must fire at least once in a {}-event run",
        report_watched.events_processed
    );
    assert_eq!(
        trace_plain, trace_watched,
        "progress callback must not perturb the trace export"
    );
    assert_eq!(
        metrics_plain, metrics_watched,
        "progress callback must not perturb the metrics export"
    );
    assert_eq!(report_plain.exec_cycles, report_watched.exec_cycles);
    assert_eq!(
        report_plain.events_processed,
        report_watched.events_processed
    );
    for pair in samples.windows(2) {
        assert!(
            pair[0].events_processed < pair[1].events_processed,
            "heartbeat event counts must strictly increase"
        );
        assert!(
            pair[0].sim_cycle <= pair[1].sim_cycle,
            "heartbeat cycles must be non-decreasing"
        );
    }
}

/// The self-profiler is pure observation too: enabling it must not change
/// any simulation result, and its heap-pop count must equal the event
/// count the report already exposes.
#[test]
fn profiler_does_not_perturb_results() {
    use idyll::sim::prof::{Phase, Profiler};

    let plain = run_once(11, true);
    let mut cfg = SystemConfig::test(4);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    cfg.idyll = Some(IdyllConfig::full());
    let spec = WorkloadSpec::paper_default(AppId::Km, Scale::Test);
    let wl = workloads::generate(&spec, 4, 11);
    let mut sys = System::new(cfg, &wl);
    sys.set_profiler(Profiler::enabled());
    let profiled = sys.run().expect("completes");
    assert_eq!(plain.exec_cycles, profiled.exec_cycles);
    assert_eq!(plain.events_processed, profiled.events_processed);
    assert_eq!(plain.migrations, profiled.migrations);
    assert_eq!(plain.invalidation_messages, profiled.invalidation_messages);
    let prof = sys.profiler();
    assert_eq!(
        prof.count(Phase::HeapPop),
        profiled.events_processed,
        "every processed event is exactly one heap pop"
    );
    assert!(
        prof.count(Phase::HeapPush) > 0,
        "event handling must schedule follow-up events"
    );
    assert!(prof.total_nanos() > 0, "phase timers must accumulate");
}

#[test]
fn report_metadata_round_trips() {
    let r = run_once(5, true);
    assert_eq!(r.scheme, "idyll");
    assert_eq!(r.workload, "KM");
    assert!(r.mpki() > 0.0);
    assert!(!r.summary().is_empty());
}
