//! GPU-count scaling invariants (the paper's §7.2 axis).

use idyll::prelude::*;

fn run(n: usize, idyll_on: bool, app: AppId) -> SimReport {
    let mut cfg = SystemConfig::test(n);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    if idyll_on {
        cfg.idyll = Some(IdyllConfig::full());
    }
    let spec = WorkloadSpec::paper_default(app, Scale::Test);
    let wl = workloads::generate(&spec, n, 42);
    System::new(cfg, &wl).run().expect("completes")
}

#[test]
fn broadcast_fanout_scales_with_gpu_count() {
    // Baseline sends one invalidation per GPU per migration: the per-
    // migration message rate must equal the GPU count exactly.
    for n in [2usize, 4, 8] {
        let r = run(n, false, AppId::Mm);
        if r.migrations > 0 {
            assert_eq!(
                r.invalidation_messages,
                r.migrations * n as u64,
                "{n} GPUs: broadcast fan-out"
            );
        }
    }
}

#[test]
fn directory_fanout_is_bounded_by_broadcast_at_every_count() {
    for n in [2usize, 4, 8] {
        let base = run(n, false, AppId::Km);
        let idy = run(n, true, AppId::Km);
        if base.migrations > 0 && idy.migrations > 0 {
            let b = base.invalidation_messages as f64 / base.migrations as f64;
            let d = idy.invalidation_messages as f64 / idy.migrations as f64;
            assert!(d <= b + 1e-9, "{n} GPUs: {d:.2} vs {b:.2}");
        }
        assert_eq!(idy.stale_translations, 0);
    }
}

#[test]
fn sharing_distribution_widens_with_more_gpus() {
    // With a fixed footprint, more GPUs share each hot page (the paper's
    // argument for why gains grow with GPU count).
    let spec4 = WorkloadSpec::paper_default(AppId::Pr, Scale::Test);
    let wl4 = workloads::generate(&spec4, 4, 42);
    let wl8 = workloads::generate(&spec4, 8, 42);
    let top4 = wl4.access_sharing_distribution()[3..].iter().sum::<f64>();
    let top8 = wl8.access_sharing_distribution()[5..].iter().sum::<f64>();
    assert!(
        top4 > 0.3,
        "PR at 4 GPUs should be widely shared: {top4:.2}"
    );
    assert!(
        top8 > 0.2,
        "PR at 8 GPUs should still be widely shared: {top8:.2}"
    );
}

#[test]
fn per_gpu_report_totals_scale_with_count() {
    let r2 = run(2, false, AppId::Sc);
    let r8 = run(8, false, AppId::Sc);
    // Same accesses-per-GPU spec → total accesses scale linearly.
    assert_eq!(r8.accesses, r2.accesses * 4);
    assert!(r8.exec_cycles > 0 && r2.exec_cycles > 0);
}
