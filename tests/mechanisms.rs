//! Mechanism-level integration checks: the IDYLL components must actually
//! engage and move the statistics the paper says they move.

use idyll::prelude::*;

fn base_cfg(n: usize) -> SystemConfig {
    let mut cfg = SystemConfig::test(n);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    cfg
}

fn run(app: AppId, cfg: SystemConfig) -> SimReport {
    let spec = WorkloadSpec::paper_default(app, Scale::Test);
    let wl = workloads::generate(&spec, cfg.n_gpus, 42);
    System::new(cfg, &wl).run().expect("completes")
}

/// A sharing-heavy workload that reliably triggers migrations at test scale.
const SHARED_APP: AppId = AppId::Mm;

#[test]
fn baseline_broadcasts_invalidations_to_all_gpus() {
    let r = run(SHARED_APP, base_cfg(4));
    assert!(r.migrations > 0, "calibration: migrations must occur");
    assert_eq!(
        r.invalidation_messages,
        r.migrations * 4 + 2 * replication_noise(&r),
        "broadcast sends one invalidation per GPU per migration"
    );
}

// Write-collapse migrations (replication off) and duplicate-dropped requests
// never occur in this configuration; keep the helper for clarity.
fn replication_noise(_r: &SimReport) -> u64 {
    0
}

#[test]
fn directory_cuts_invalidation_messages() {
    let base = run(SHARED_APP, base_cfg(4));
    let mut dir_cfg = base_cfg(4);
    dir_cfg.idyll = Some(IdyllConfig::only_directory());
    let dir = run(SHARED_APP, dir_cfg);
    assert!(dir.migrations > 0);
    let base_per_mig = base.invalidation_messages as f64 / base.migrations as f64;
    let dir_per_mig = dir.invalidation_messages as f64 / dir.migrations as f64;
    assert!(
        dir_per_mig < base_per_mig,
        "directory must send fewer invalidations per migration: {dir_per_mig:.2} vs {base_per_mig:.2}"
    );
}

#[test]
fn directory_never_misses_a_holder() {
    // Soundness proxy: with the directory filtering invalidations, the
    // coherence audit must still pass (a false negative would leave a stale
    // valid PTE behind).
    for app in AppId::ALL {
        let mut cfg = base_cfg(4);
        cfg.idyll = Some(IdyllConfig::only_directory());
        let r = run(app, cfg);
        assert_eq!(r.stale_translations, 0, "{app}");
    }
}

#[test]
fn lazy_invalidation_exercises_the_irmb() {
    let mut cfg = base_cfg(4);
    cfg.idyll = Some(IdyllConfig::only_lazy());
    let r = run(SHARED_APP, cfg);
    assert!(r.irmb_inserts > 0, "invalidations must be buffered");
    assert_eq!(
        r.irmb_inserts, r.invalidation_messages,
        "every received invalidation goes through the IRMB"
    );
}

#[test]
fn lazy_invalidation_removes_walker_contention() {
    let base = run(SHARED_APP, base_cfg(4));
    let mut cfg = base_cfg(4);
    cfg.idyll = Some(IdyllConfig::only_lazy());
    let lazy = run(SHARED_APP, cfg);
    // The baseline walks one invalidation per message through the GMMU; the
    // lazy scheme coalesces them, so the invalidation-class walk count must
    // shrink.
    assert!(
        lazy.walker_mix.invalidations() < base.walker_mix.invalidations(),
        "lazy: {} vs base: {}",
        lazy.walker_mix.invalidations(),
        base.walker_mix.invalidations()
    );
}

#[test]
fn zero_latency_has_no_invalidation_walks() {
    let mut cfg = base_cfg(4);
    cfg.zero_latency_invalidation = true;
    let r = run(SHARED_APP, cfg);
    assert!(r.migrations > 0);
    assert_eq!(r.invalidation_latency.count(), 0);
    // The instantaneous updates are still classified for Figure 5.
    assert!(r.walker_mix.invalidations() > 0);
}

#[test]
fn replication_grants_replicas_and_collapses_on_writes() {
    let mut cfg = base_cfg(4);
    cfg.replication = true;
    let r = run(SHARED_APP, cfg);
    let (replications, collapses) = r.replication.expect("replication stats present");
    assert!(replications > 0, "read sharing must create replicas");
    assert!(collapses > 0, "writes to shared pages must collapse");
    assert_eq!(r.stale_translations, 0);
}

#[test]
fn transfw_probes_and_forwards() {
    let mut cfg = base_cfg(4);
    cfg.transfw = Some(idyll::core::transfw::TransFwConfig::default());
    let r = run(AppId::Pr, cfg);
    let (probes, hits, _false_forwards) = r.transfw.expect("transfw stats present");
    assert!(probes > 0, "far faults must probe the PRT");
    assert!(hits > 0, "some probes should hit after mappings spread");
}

#[test]
fn inmem_directory_reports_cache_hit_rate() {
    let mut cfg = base_cfg(4);
    cfg.idyll = Some(IdyllConfig::in_mem());
    let r = run(SHARED_APP, cfg);
    let rate = r.vm_cache_hit_rate.expect("vm-cache stats present");
    assert!((0.0..=1.0).contains(&rate));
    assert!(r.migrations > 0);
}

#[test]
fn sharing_distribution_is_a_distribution() {
    let r = run(AppId::Km, base_cfg(4));
    let total: f64 = r.sharing_distribution.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
    assert_eq!(r.sharing_distribution.len(), 4);
}

#[test]
fn walker_mix_tracks_unnecessary_invalidations_in_baseline() {
    let r = run(SHARED_APP, base_cfg(4));
    assert!(
        r.walker_mix.invalidation_unnecessary > 0,
        "broadcast must produce unnecessary invalidations"
    );
    assert!(r.walker_mix.unnecessary_share() > 0.05);
}

#[test]
fn idyll_filters_unnecessary_invalidations() {
    let base = run(SHARED_APP, base_cfg(4));
    let mut cfg = base_cfg(4);
    cfg.idyll = Some(IdyllConfig::full());
    let idy = run(SHARED_APP, cfg);
    let base_unnec =
        base.walker_mix.invalidation_unnecessary as f64 / base.migrations.max(1) as f64;
    let idy_unnec = idy.walker_mix.invalidation_unnecessary as f64 / idy.migrations.max(1) as f64;
    assert!(
        idy_unnec < base_unnec,
        "per-migration unnecessary invalidations: idyll {idy_unnec:.2} vs base {base_unnec:.2}"
    );
}
