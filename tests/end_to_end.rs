//! Cross-crate integration: every application completes end-to-end under
//! every scheme, conserving accesses and upholding the coherence audit.

use idyll::prelude::*;
use idyll::system::config::HostConfig;

fn test_config(n_gpus: usize) -> SystemConfig {
    let mut cfg = SystemConfig::test(n_gpus);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    cfg.host = HostConfig {
        batch_window: sim_engine::Cycle(200),
        ..HostConfig::default()
    };
    cfg
}

fn run(app: AppId, mut cfg: SystemConfig) -> SimReport {
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    let spec = WorkloadSpec::paper_default(app, Scale::Test);
    let wl = workloads::generate(&spec, cfg.n_gpus, 42);
    let expected = wl.total_accesses();
    let report = System::new(cfg, &wl).run().expect("simulation completes");
    assert_eq!(
        report.accesses, expected,
        "{app}: every issued access must complete"
    );
    assert_eq!(
        report.stale_translations, 0,
        "{app}: translation coherence violated"
    );
    assert!(report.exec_cycles > 0);
    report
}

#[test]
fn all_apps_complete_under_baseline() {
    for app in AppId::ALL {
        run(app, test_config(4));
    }
}

#[test]
fn all_apps_complete_under_idyll() {
    for app in AppId::ALL {
        let mut cfg = test_config(4);
        cfg.idyll = Some(IdyllConfig::full());
        run(app, cfg);
    }
}

#[test]
fn all_apps_complete_under_only_lazy() {
    for app in AppId::ALL {
        let mut cfg = test_config(4);
        cfg.idyll = Some(IdyllConfig::only_lazy());
        run(app, cfg);
    }
}

#[test]
fn all_apps_complete_under_only_directory() {
    for app in AppId::ALL {
        let mut cfg = test_config(4);
        cfg.idyll = Some(IdyllConfig::only_directory());
        run(app, cfg);
    }
}

#[test]
fn all_apps_complete_under_inmem() {
    for app in AppId::ALL {
        let mut cfg = test_config(4);
        cfg.idyll = Some(IdyllConfig::in_mem());
        run(app, cfg);
    }
}

#[test]
fn all_apps_complete_under_zero_latency_invalidation() {
    for app in AppId::ALL {
        let mut cfg = test_config(4);
        cfg.zero_latency_invalidation = true;
        run(app, cfg);
    }
}

#[test]
fn all_apps_complete_under_replication() {
    for app in AppId::ALL {
        let mut cfg = test_config(4);
        cfg.replication = true;
        run(app, cfg);
    }
}

#[test]
fn all_apps_complete_under_transfw_and_combined() {
    for app in [AppId::Pr, AppId::Mm, AppId::St] {
        let mut cfg = test_config(4);
        cfg.transfw = Some(idyll::core::transfw::TransFwConfig::default());
        run(app, cfg.clone());
        cfg.idyll = Some(IdyllConfig::full());
        run(app, cfg);
    }
}

#[test]
fn migration_policies_complete() {
    for policy in [MigrationPolicy::FirstTouch, MigrationPolicy::OnTouch] {
        let mut cfg = test_config(2);
        cfg.policy = policy;
        let spec = WorkloadSpec::paper_default(AppId::Sc, Scale::Test);
        let wl = workloads::generate(&spec, 2, 42);
        let report = System::new(cfg, &wl).run().expect("completes");
        assert_eq!(report.accesses, wl.total_accesses());
        if policy == MigrationPolicy::FirstTouch {
            assert_eq!(report.migrations, 0, "first-touch never migrates");
        }
    }
}

#[test]
fn dnn_workloads_complete() {
    use idyll::workloads::dnn::{generate_dnn, DnnModel, DnnSpec};
    for model in [DnnModel::Vgg16, DnnModel::Resnet18] {
        let wl = generate_dnn(&DnnSpec::test_default(model), 4, 3);
        for idyll_on in [false, true] {
            let mut cfg = test_config(4);
            if idyll_on {
                cfg.idyll = Some(IdyllConfig::full());
            }
            let report = System::new(cfg, &wl).run().expect("completes");
            assert_eq!(report.accesses, wl.total_accesses());
            assert_eq!(report.stale_translations, 0);
        }
    }
}

#[test]
fn large_pages_complete() {
    for app in [AppId::Pr, AppId::St] {
        let cfg = test_config(4).with_large_pages();
        run(app, cfg);
    }
}

#[test]
fn gpu_count_scaling_completes() {
    for n in [1, 2, 8] {
        let mut cfg = test_config(n);
        cfg.idyll = Some(IdyllConfig::full());
        run(AppId::Km, cfg);
    }
}
