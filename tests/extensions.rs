//! Optional-extension integration: fault-driven prefetching and CTA
//! scheduling policies compose with the core protocol.

use idyll::gpu::scheduler::CtaSchedule;
use idyll::prelude::*;

fn cfg(n: usize) -> SystemConfig {
    let mut cfg = SystemConfig::test(n);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    cfg
}

#[test]
fn prefetch_reduces_far_faults_on_streaming_remote_reads() {
    // GPU 1 streams sequentially through GPU 0's pages: without prefetch
    // every page is a separate far fault; with it, each dense block's
    // remaining translations are pushed eagerly.
    use idyll::vm::addr::Vpn;
    use idyll::workloads::{Access, GpuTrace, Workload};
    let gpu0: Vec<Access> = (0..128)
        .map(|i| Access {
            vpn: Vpn(i % 128),
            is_write: false,
        })
        .collect();
    let gpu1: Vec<Access> = (0..256)
        .map(|i| Access {
            vpn: Vpn((i / 2) % 128),
            is_write: false,
        })
        .collect();
    let wl = Workload {
        name: "stream".into(),
        traces: vec![GpuTrace { accesses: gpu0 }, GpuTrace { accesses: gpu1 }],
        pages: 128,
        base_vpn: Vpn(0),
        compute_gap: 2,
    };
    let mut base_cfg = cfg(2);
    base_cfg.policy = MigrationPolicy::FirstTouch; // isolate faulting from migration churn
    let mut pf_cfg = base_cfg.clone();
    pf_cfg.host.prefetch = true;
    let base = System::new(base_cfg, &wl).run().expect("completes");
    let pf = System::new(pf_cfg, &wl).run().expect("completes");
    assert_eq!(pf.accesses, base.accesses);
    assert_eq!(pf.stale_translations, 0);
    assert!(
        pf.far_faults < base.far_faults,
        "prefetching translations must cut far faults: {} vs {}",
        pf.far_faults,
        base.far_faults
    );
}

#[test]
fn prefetch_composes_with_idyll() {
    let spec = WorkloadSpec::paper_default(AppId::Km, Scale::Test);
    let wl = workloads::generate(&spec, 4, 7);
    let mut combined = cfg(4);
    combined.host.prefetch = true;
    combined.idyll = Some(IdyllConfig::full());
    let r = System::new(combined, &wl).run().expect("completes");
    assert_eq!(r.accesses, wl.total_accesses());
    assert_eq!(r.stale_translations, 0);
}

#[test]
fn all_cta_schedules_complete_coherently() {
    let spec = WorkloadSpec::paper_default(AppId::Sc, Scale::Test);
    let wl = workloads::generate(&spec, 2, 11);
    for schedule in [
        CtaSchedule::BlockContiguous,
        CtaSchedule::RoundRobin,
        CtaSchedule::BlockCyclic(16),
    ] {
        let mut c = cfg(2);
        c.cta_schedule = schedule;
        let r = System::new(c, &wl).run().expect("completes");
        assert_eq!(r.accesses, wl.total_accesses(), "{schedule:?}");
        assert_eq!(r.stale_translations, 0, "{schedule:?}");
    }
}

#[test]
fn round_robin_stresses_tlbs_harder_than_contiguous() {
    // Fine-grain interleave destroys per-warp locality: L1 TLB hit rate
    // must drop relative to contiguous tiles.
    let spec = WorkloadSpec::paper_default(AppId::Mm, Scale::Test);
    let wl = workloads::generate(&spec, 2, 3);
    let run = |schedule| {
        let mut c = cfg(2);
        c.cta_schedule = schedule;
        System::new(c, &wl).run().expect("completes")
    };
    let contiguous = run(CtaSchedule::BlockContiguous);
    let rr = run(CtaSchedule::RoundRobin);
    let hit =
        |r: &SimReport| r.l1_tlb_hits as f64 / (r.l1_tlb_hits + r.l1_tlb_misses).max(1) as f64;
    assert!(
        hit(&rr) < hit(&contiguous),
        "round-robin L1 hit rate {:.3} should trail contiguous {:.3}",
        hit(&rr),
        hit(&contiguous)
    );
}

#[test]
fn no_bypass_ablation_still_coherent() {
    let spec = WorkloadSpec::paper_default(AppId::Mm, Scale::Test);
    let wl = workloads::generate(&spec, 4, 5);
    let mut c = cfg(4);
    c.idyll = Some(IdyllConfig {
        bypass_on_irmb_hit: false,
        ..IdyllConfig::full()
    });
    let r = System::new(c, &wl).run().expect("completes");
    assert_eq!(r.accesses, wl.total_accesses());
    assert_eq!(r.stale_translations, 0);
    assert_eq!(
        r.irmb_bypasses, 0,
        "bypass disabled: no IRMB short-circuits"
    );
}
