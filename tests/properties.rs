//! Property-based end-to-end tests: arbitrary small configurations must
//! complete, conserve accesses, and uphold the coherence audit.

use idyll::prelude::*;
use proptest::prelude::*;

fn apps() -> impl Strategy<Value = AppId> {
    prop::sample::select(AppId::ALL.to_vec())
}

#[derive(Debug, Clone, Copy)]
enum Scheme {
    Baseline,
    Idyll,
    OnlyLazy,
    OnlyDirectory,
    InMem,
    ZeroLat,
    Replication,
}

fn schemes() -> impl Strategy<Value = Scheme> {
    prop::sample::select(vec![
        Scheme::Baseline,
        Scheme::Idyll,
        Scheme::OnlyLazy,
        Scheme::OnlyDirectory,
        Scheme::InMem,
        Scheme::ZeroLat,
        Scheme::Replication,
    ])
}

fn build(scheme: Scheme, n_gpus: usize) -> SystemConfig {
    let mut cfg = SystemConfig::test(n_gpus);
    cfg.policy = MigrationPolicy::AccessCounter {
        threshold: Scale::Test.counter_threshold(),
    };
    match scheme {
        Scheme::Baseline => {}
        Scheme::Idyll => cfg.idyll = Some(IdyllConfig::full()),
        Scheme::OnlyLazy => cfg.idyll = Some(IdyllConfig::only_lazy()),
        Scheme::OnlyDirectory => cfg.idyll = Some(IdyllConfig::only_directory()),
        Scheme::InMem => cfg.idyll = Some(IdyllConfig::in_mem()),
        Scheme::ZeroLat => cfg.zero_latency_invalidation = true,
        Scheme::Replication => cfg.replication = true,
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn any_configuration_completes_coherently(
        app in apps(),
        scheme in schemes(),
        n_gpus in 1usize..5,
        seed in 0u64..1000,
    ) {
        let cfg = build(scheme, n_gpus);
        let spec = WorkloadSpec::paper_default(app, Scale::Test);
        let wl = workloads::generate(&spec, n_gpus, seed);
        let expected = wl.total_accesses();
        let report = System::new(cfg, &wl).run().expect("simulation completes");
        prop_assert_eq!(report.accesses, expected, "access conservation");
        prop_assert_eq!(report.stale_translations, 0, "translation coherence");
        prop_assert!(report.exec_cycles > 0);
    }

    #[test]
    fn idyll_never_sends_more_invalidations_per_migration_than_broadcast(
        app in apps(),
        seed in 0u64..100,
    ) {
        let n = 4;
        let spec = WorkloadSpec::paper_default(app, Scale::Test);
        let wl = workloads::generate(&spec, n, seed);
        let base = System::new(build(Scheme::Baseline, n), &wl).run().expect("base");
        let idy = System::new(build(Scheme::Idyll, n), &wl).run().expect("idyll");
        if base.migrations > 0 && idy.migrations > 0 {
            let base_rate = base.invalidation_messages as f64 / base.migrations as f64;
            let idy_rate = idy.invalidation_messages as f64 / idy.migrations as f64;
            // Directory filtering can only reduce the fan-out (false
            // positives are bounded by the broadcast).
            prop_assert!(idy_rate <= base_rate + 1e-9,
                "idyll {idy_rate} vs broadcast {base_rate}");
        }
    }
}
